"""Tests for automatic interval splitting (the §2.2 extension)."""

import pytest

from repro.intervals import (
    AmbiguousComparisonError,
    Box,
    Interval,
    evaluate_with_splitting,
    split_until_decidable,
)


def branchy_abs(x: Interval) -> Interval:
    """|x| implemented with a branch — ambiguous when x spans 0."""
    if x >= 0.0:
        return x
    return -x


class TestSplitUntilDecidable:
    def test_no_split_needed(self):
        result = split_until_decidable(
            lambda b: branchy_abs(b[0]), Box([Interval(1, 2)])
        )
        assert result.value == Interval(1, 2)
        assert result.splits == 0
        assert result.complete and not result.point_sampled

    def test_splits_on_ambiguity(self):
        result = split_until_decidable(
            lambda b: branchy_abs(b[0]), Box([Interval(-1, 1)])
        )
        assert result.splits >= 1
        assert result.complete
        # Hull of |x| over [-1, 1] is [0, 1] (plus a measure-tiny sliver).
        assert result.value.contains(0.0) and result.value.contains(1.0)
        assert result.value.hi <= 1.0 + 1e-6

    def test_boundary_tie_resolved_by_point_sampling(self):
        # [-1, 0] >= 0 is ambiguous at every bisection depth; the sliver
        # must end up point-sampled, not failed.
        result = split_until_decidable(
            lambda b: branchy_abs(b[0]), Box([Interval(-1, 0)])
        )
        assert result.complete
        assert result.point_sampled

    def test_evaluated_boxes_cover_domain(self):
        result = split_until_decidable(
            lambda b: branchy_abs(b[0]), Box([Interval(-2, 2)])
        )
        total = sum(b[0].width for b in result.boxes + result.point_sampled)
        assert total == pytest.approx(4.0, rel=1e-3)

    def test_hopeless_function_raises(self):
        def always_ambiguous(_b: Box) -> Interval:
            raise AmbiguousComparisonError("<", Interval(0, 1), Interval(0, 1))

        with pytest.raises(AmbiguousComparisonError):
            split_until_decidable(
                always_ambiguous, Box([Interval(0, 1)]), max_depth=2
            )

    def test_depth_zero_point_samples_immediately(self):
        result = split_until_decidable(
            lambda b: branchy_abs(b[0]), Box([Interval(-1, 1)]), max_depth=0
        )
        assert result.splits == 0
        assert result.point_sampled


class TestEvaluateWithSplitting:
    def test_multivariate_max(self):
        def f(x: Interval, y: Interval) -> Interval:
            if x >= y:
                return x
            return y

        result = evaluate_with_splitting(
            f, [Interval(0, 1), Interval(0.5, 1.5)], max_depth=10
        )
        assert result.value.contains(1.5)
        assert result.value.contains(0.5)

    def test_decidable_direct(self):
        result = evaluate_with_splitting(lambda x: x + 1.0, [Interval(0, 1)])
        assert result.splits == 0
        assert result.value.contains(1.5)


class TestReplaySplitting:
    """Replay-routed sub-box evaluation matches Python re-execution."""

    @staticmethod
    def _branchy_max(x: Interval, y: Interval) -> Interval:
        if x >= y:
            return x * x
        return y * y

    def test_replay_identical_to_reexecution(self):
        inputs = [Interval(-1.0, 1.0), Interval(-0.5, 1.5)]
        rep = evaluate_with_splitting(self._branchy_max, inputs, replay=True)
        ref = evaluate_with_splitting(self._branchy_max, inputs, replay=False)
        assert rep.value.lo == ref.value.lo
        assert rep.value.hi == ref.value.hi
        assert rep.splits == ref.splits
        assert len(rep.boxes) == len(ref.boxes)
        assert len(rep.point_sampled) == len(ref.point_sampled)
        assert ref.replay_stats is None
        assert rep.replay_stats is not None
        # One cached trace per branch signature serves the decidable
        # sub-boxes (ambiguous ones still re-record in program order).
        assert rep.replay_stats["traces"] == 2
        assert rep.replay_stats["replays"] >= len(rep.boxes) // 2

    def test_untaped_function_degrades_gracefully(self):
        # fn ignores its taped arguments: nothing to replay, every call
        # records — but the result is still correct.
        result = evaluate_with_splitting(
            lambda x: Interval(2.0, 3.0), [Interval(0, 1)], replay=True
        )
        assert result.value == Interval(2.0, 3.0)
        assert result.replay_stats["replays"] == 0
        assert result.replay_stats["traces"] == 0
