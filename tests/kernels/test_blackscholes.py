"""Tests for the BlackScholes benchmark."""

import math

import numpy as np
import pytest

from repro.kernels.blackscholes import (
    analyse_blackscholes,
    analyse_option,
    black_scholes_blocks,
    black_scholes_price,
    blackscholes_significance,
    cndf,
    make_portfolio,
    price_portfolio,
)
from repro.kernels.blackscholes.tasks import price_chunk_approx
from repro.metrics import aggregate_relative_error


@pytest.fixture(scope="module")
def portfolio():
    return make_portfolio(count=2048, seed=23)


@pytest.fixture(scope="module")
def reference(portfolio):
    return price_portfolio(
        portfolio.spots,
        portfolio.strikes,
        portfolio.rates,
        portfolio.volatilities,
        portfolio.expiries,
        portfolio.puts,
    )


class TestPricing:
    def test_known_call_price(self):
        # Standard textbook case: S=K=100, r=5%, v=20%, T=1 -> C ≈ 10.4506.
        price = black_scholes_price(100.0, 100.0, 0.05, 0.2, 1.0)
        assert price == pytest.approx(10.4506, abs=1e-3)

    def test_known_put_price(self):
        # Same case, put ≈ 5.5735 (put-call parity).
        price = black_scholes_price(100.0, 100.0, 0.05, 0.2, 1.0, put=True)
        assert price == pytest.approx(5.5735, abs=1e-3)

    def test_put_call_parity(self):
        s, k, r, v, t = 110.0, 95.0, 0.03, 0.35, 0.7
        call = black_scholes_price(s, k, r, v, t)
        put = black_scholes_price(s, k, r, v, t, put=True)
        assert call - put == pytest.approx(s - k * math.exp(-r * t), rel=1e-10)

    def test_deep_itm_call_close_to_intrinsic(self):
        price = black_scholes_price(200.0, 100.0, 0.01, 0.1, 0.1)
        assert price == pytest.approx(200.0 - 100.0 * math.exp(-0.001), rel=1e-3)

    def test_cndf_symmetry(self):
        assert cndf(0.0) == pytest.approx(0.5)
        assert cndf(1.5) + cndf(-1.5) == pytest.approx(1.0)

    def test_vectorised_matches_scalar(self, portfolio, reference):
        for i in (0, 100, 999):
            scalar = black_scholes_price(
                float(portfolio.spots[i]),
                float(portfolio.strikes[i]),
                float(portfolio.rates[i]),
                float(portfolio.volatilities[i]),
                float(portfolio.expiries[i]),
                put=bool(portfolio.puts[i]),
            )
            assert reference[i] == pytest.approx(scalar, rel=1e-10)

    def test_prices_non_negative(self, reference):
        assert np.all(reference >= -1e-9)


class TestPortfolioData:
    def test_deterministic(self):
        a = make_portfolio(100, seed=1)
        b = make_portfolio(100, seed=1)
        assert np.array_equal(a.spots, b.spots)

    def test_ranges(self, portfolio):
        assert portfolio.spots.min() >= 40.0 and portfolio.spots.max() <= 160.0
        assert portfolio.volatilities.min() >= 0.10
        assert portfolio.expiries.max() <= 2.0

    def test_mixed_calls_and_puts(self, portfolio):
        assert 0.3 < portfolio.puts.mean() < 0.7

    def test_slice(self, portfolio):
        piece = portfolio.slice(10, 20)
        assert piece.count == 10
        assert piece.spots[0] == portfolio.spots[10]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_portfolio(0)


class TestApprox:
    def test_approx_chunk_close_but_not_exact(self, portfolio, reference):
        out = np.zeros(portfolio.count)
        price_chunk_approx(out, portfolio, 0)
        err = aggregate_relative_error(reference, out)
        assert 1e-4 < err < 0.15  # visibly degraded, still usable


class TestAnalysis:
    def test_block_a_dominates(self):
        # Aggregate over a representative sample: per-option block
        # ordering fluctuates (Eq. 11's worst-case product, see
        # EXPERIMENTS.md), but block A dominates the portfolio mean.
        result = analyse_blackscholes(samples=16)
        ranking = result.ranking()
        assert ranking[0] == "A"
        assert result.block_significance["A"] >= 1.5 * min(
            result.block_significance[b] for b in "BCD"
        )

    def test_per_option_blocks_present(self):
        sigs = analyse_option(100.0, 95.0, 0.03, 0.3, 1.0)
        assert set(sigs) == {"A", "B", "C", "D"}
        assert all(v >= 0 for v in sigs.values())

    def test_normalised_peak(self):
        result = analyse_blackscholes(samples=4)
        assert max(result.block_significance.values()) == pytest.approx(1.0)


class TestSignificanceVersion:
    def test_ratio_one_exact(self, portfolio, reference):
        run = blackscholes_significance(portfolio, 1.0)
        assert np.allclose(run.output, reference)

    def test_error_monotone(self, portfolio, reference):
        errors = [
            aggregate_relative_error(
                reference, blackscholes_significance(portfolio, r).output
            )
            for r in (0.0, 0.5, 1.0)
        ]
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] == 0.0

    def test_energy_monotone(self, portfolio):
        energies = [
            blackscholes_significance(portfolio, r).joules
            for r in (0.0, 0.5, 1.0)
        ]
        assert energies == sorted(energies)

    def test_error_scale_paper_like(self, portfolio, reference):
        run = blackscholes_significance(portfolio, 0.0)
        err = aggregate_relative_error(reference, run.output)
        assert 0.005 < err < 0.15  # few percent at full approximation

    def test_all_chunks_counted(self, portfolio):
        run = blackscholes_significance(portfolio, 0.5, chunk_size=256)
        assert run.stats.total == math.ceil(portfolio.count / 256)
