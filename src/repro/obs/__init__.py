"""repro.obs — zero-dependency structured tracing, metrics and profiling.

The analysis pipeline grew from one object tape into a multi-backend
stack (object tape, compiled SoA tape, vec lanes, record-once/replay-many
trace cache) and a significance-aware task runtime.  This package is the
shared observability layer for all of them:

* :mod:`repro.obs.trace` — nestable wall-clock **spans** recorded into an
  in-memory ring buffer.  Tracing is off by default; the disabled path is
  a single attribute check so instrumented hot paths stay hot.
* :mod:`repro.obs.metrics` — named **counters / gauges / histograms** in
  a process-global registry, with ``snapshot()`` → plain dict and JSON /
  Prometheus-text exporters.  Counters are always on (one float add).
* :mod:`repro.obs.profile` — render span trees and metric tables for the
  ``repro profile`` CLI subcommand / ``--profile`` flag, and dump
  ``obs.json`` / ``metrics.prom`` artifacts.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("experiment.figure4"):
        figure4()
    print(obs.format_profile(obs.spans(), obs.snapshot()))
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
    reset_metrics,
    snapshot,
    to_prometheus,
)
from .profile import (
    aggregate_spans,
    dump_profile,
    format_metrics_table,
    format_profile,
    format_span_tree,
    spans_to_dicts,
)
from .trace import (
    Span,
    clear,
    disable,
    enable,
    enabled,
    set_enabled,
    set_ring_capacity,
    span,
    spans,
    traced,
)

__all__ = [
    # trace
    "Span",
    "span",
    "traced",
    "spans",
    "clear",
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "set_ring_capacity",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset_metrics",
    "to_prometheus",
    # profile
    "aggregate_spans",
    "format_span_tree",
    "format_metrics_table",
    "format_profile",
    "dump_profile",
    "spans_to_dicts",
]
