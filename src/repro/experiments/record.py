"""Record every experiment's measured numbers to disk.

One command regenerates the data behind EXPERIMENTS.md: all five Figure 7
sweeps, the headline summary, Table 2, and the Figure 3–6 analyses, as a
single JSON document plus a markdown digest.  Intended for CI: archive
the JSON per commit and diff it to catch reproduction regressions.

    python -m repro record --out-dir results [--fast]
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from .figure3 import figure3
from .figure4 import figure4
from .figure5 import figure5
from .figure6 import figure6
from .figure7 import figure7_all
from .headline import format_headline, headline
from .sweep import SweepResult, format_sweep
from .table2 import table2

__all__ = ["record_all", "save_record"]


def _sweep_payload(sweep: SweepResult) -> dict:
    return {
        "benchmark": sweep.benchmark,
        "quality_kind": sweep.quality_kind,
        "energy_reduction": sweep.energy_reduction,
        "points": [
            {
                "ratio": p.ratio,
                "variant": p.variant,
                "quality": p.quality,
                "joules": p.joules,
            }
            for p in sweep.points
        ],
    }


def record_all(fast: bool = True) -> dict[str, Any]:
    """Run every experiment and collect the measurements.

    ``fast=True`` (default) uses the reduced workloads — suitable for CI;
    pass ``False`` for the full EXPERIMENTS.md-scale numbers.
    """
    sweeps = figure7_all(fast=fast)
    head = headline(sweeps)

    fig3 = figure3()
    fig4 = figure4(size=48 if fast else 64, samples=2 if fast else 6)
    fig5 = figure5(
        width=96 if fast else 192,
        height=64 if fast else 144,
        grid=(6, 8) if fast else (9, 12),
        jitter_samples=4 if fast else 10,
    )
    fig6 = figure6(positions=3 if fast else 5)

    return {
        "fast": fast,
        "figure3": {
            "normalised_terms": fig3.analysis.normalised,
            "partition_level": fig3.analysis.partition_level,
        },
        "figure4": {
            "diagonal_means": fig4.analysis.diagonal_means(),
        },
        "figure5": {
            "radial_profile": fig5.radial_profile(),
        },
        "figure6": {
            "pair_significance": fig6.analysis.pair_significance,
            "ranking": fig6.analysis.ranking(),
        },
        "figure7": {name: _sweep_payload(s) for name, s in sweeps.items()},
        "headline": {
            "per_benchmark": head.per_benchmark,
            "min": head.minimum,
            "max": head.maximum,
            "mean": head.mean,
        },
        "table2": [
            {
                "benchmark": row.benchmark,
                "sequential": row.sequential,
                "parallel": row.parallel,
                "approx": row.approx,
                "significance": row.significance,
                "overhead_percent": row.overhead_percent,
            }
            for row in table2()
        ],
        "_sweep_tables": {
            name: format_sweep(s) for name, s in sweeps.items()
        },
        "_headline_text": format_headline(head),
    }


def save_record(
    directory: str | pathlib.Path, fast: bool = True
) -> tuple[pathlib.Path, pathlib.Path]:
    """Run :func:`record_all` and write JSON + markdown digests."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data = record_all(fast=fast)

    json_path = directory / "experiments.json"
    json_path.write_text(json.dumps(data, indent=2), encoding="utf-8")

    md_lines = [
        "# Measured experiment digest",
        "",
        f"workload scale: {'fast (CI)' if data['fast'] else 'full'}",
        "",
        "```",
        data["_headline_text"],
        "```",
        "",
    ]
    for name, table in data["_sweep_tables"].items():
        md_lines += [f"## {name}", "", "```", table, "```", ""]
    md_path = directory / "experiments.md"
    md_path.write_text("\n".join(md_lines), encoding="utf-8")
    return json_path, md_path
