"""The significance-analysis service: routes, handlers, caches, workers.

:class:`SignificanceService` wires the kernel registry
(:mod:`repro.serve.kernels`) to the asyncio HTTP layer
(:mod:`repro.serve.http`):

* ``POST /analyse`` — kernel id + input ranges -> the full
  :class:`~repro.scorpio.report.SignificanceReport` as JSON.  The body is
  exactly ``repro.scorpio.serialize.report_to_json`` output, so a service
  response is byte-identical to an in-process analysis; the
  ``X-Repro-Cache`` header says whether it was served by recording,
  replay or divergence fallback.
* ``POST /advise`` — same analysis, answered with fastmath substitution
  advice from :mod:`repro.scorpio.advisor`.
* ``POST /tune`` — ratio-knob search via :mod:`repro.runtime.tuning`;
  answers a ready-to-use ``taskwait(ratio=...)`` recommendation.
* ``GET /metrics`` — Prometheus text exposition of the process-global
  :mod:`repro.obs` registry (per-endpoint latency, cache hit/divergence
  counters, and everything the pipeline itself counts).
* ``GET /healthz`` / ``GET /kernels`` — liveness and discovery.

Analysis work never runs on the event loop: every request's kernel work
is shipped to a thread pool, so a cold recording (tens of milliseconds of
operator-overloaded taping) does not stall concurrently arriving warm
requests, which are pure vectorized replay.  Each kernel owns one
:class:`~repro.scorpio.TraceCache` — kernel identity is the cache key —
and the cache's own per-key record lock guarantees two racing cold
requests record exactly once.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import __version__ as _VERSION
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.flight import FlightRecorder, RequestRecord
from repro.scorpio import TraceCache
from repro.scorpio.serialize import report_to_json

from .batching import KernelBatcher
from .http import HttpError, HttpServer, Request, Response, Router, json_response
from .kernels import KernelEntry, default_registry, parse_intervals, tune_setup

__all__ = ["ServiceConfig", "SignificanceService", "ServiceThread"]


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 8077
    request_timeout: float = 30.0
    max_body: int = 4 * 1024 * 1024
    workers: int = 4  # analysis thread / process pool size
    validate: bool = False  # TraceCache re-record validation
    # Analysis backend: "thread" ships /analyse work to the in-process
    # thread pool (the default); "process" ships it to a
    # :class:`repro.mp.ProcessExecutor` whose long-lived workers each
    # keep their own per-process TraceCache (record once per worker,
    # replay after — responses are byte-identical either way, which is
    # the cache's pinned invariant).  /advise and /tune bodies follow
    # the same backend: thread pool by default, pool workers under
    # executor="process".
    executor: str = "thread"
    # Dynamic micro-batching of POST /analyse: concurrent requests for
    # one kernel arriving within batch_window_ms of each other are
    # coalesced into one lane-batched replay sweep of up to max_batch
    # lanes (responses stay byte-identical to the unbatched path).
    # max_batch=1 disables coalescing entirely.
    batch_window_ms: float = 2.0
    max_batch: int = 16
    # Persistent tape store directory (None -> $REPRO_TAPE_DIR if set).
    # With a store, a restarted service loads recorded tapes from disk
    # and serves its very first request per kernel as a replay.
    store_dir: str | None = None
    # Span recording for the service's lifetime.  The service enables the
    # process-global obs tracing flag on construction and restores the
    # previous value on close(), so embedding a service (tests, examples)
    # never leaks the flag.  The flight recorder below is independent of
    # this and always on.
    tracing: bool = True
    # Per-request flight recorder: ring size of retained request
    # summaries served at GET /debug/requests and /debug/trace/<id>.
    flight_capacity: int = 256
    # Blanket per-kernel latency SLO in ms applied to every kernel whose
    # KernelEntry does not pin its own slo_ms (None = no objective).  A
    # kernel whose most recent request exceeded its SLO turns /healthz
    # "degraded".
    default_slo_ms: float | None = None


# Per-endpoint observability: one latency histogram per route plus
# request/error totals, all in the process-global obs registry so
# GET /metrics exposes them alongside the pipeline's own counters.
_H_LATENCY = {
    name: obs_metrics.histogram(f"serve.latency_ms.{name}")
    for name in (
        "analyse", "advise", "tune", "metrics", "healthz", "kernels", "debug",
    )
}
_C_REQUESTS = obs_metrics.counter("serve.requests")
_C_ERRORS = obs_metrics.counter("serve.errors")
_C_HITS = obs_metrics.counter("serve.analyse.cache_hits")
_C_MISSES = obs_metrics.counter("serve.analyse.cache_misses")
_C_DIVERGENCES = obs_metrics.counter("serve.analyse.divergences")

_OUTCOME_COUNTER = {
    "replay": _C_HITS,
    "record": _C_MISSES,
    "divergence": _C_DIVERGENCES,
}

# Per-request flight-record scratch, set by _timed() for the duration of
# one handler invocation.  A contextvar (not an attribute on the request)
# because handlers fan work out through closures; anything running in the
# request's asyncio context can annotate the record via _request_info().
_REQ_INFO: ContextVar["dict[str, Any] | None"] = ContextVar(
    "repro_serve_request_info", default=None
)


def _request_info() -> "dict[str, Any] | None":
    """The in-flight request's flight-record scratch dict (or None)."""
    return _REQ_INFO.get()


def _assemble_trace(trace_id: str) -> list[dict[str, Any]]:
    """One trace's span forest, re-linked across recording boundaries.

    Root spans reach the ring separately (the request's manual span, the
    batch span, spans adopted from pool workers); each still carries its
    context's ``parent_id``, so any root whose parent is present in the
    same trace is re-attached as a child — the returned forest shows the
    HTTP handling, the batch gather window and the worker-side replay as
    one tree whenever the ids connect.
    """
    dicts = obs_profile.spans_to_dicts(obs_trace.spans_for_trace(trace_id))
    by_id: dict[str, dict[str, Any]] = {}

    def index(node: dict[str, Any]) -> None:
        span_id = node.get("span_id")
        if span_id:
            by_id[span_id] = node
        for child in node["children"]:
            index(child)

    for node in dicts:
        index(node)
    forest: list[dict[str, Any]] = []
    for node in dicts:
        parent = by_id.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            forest.append(node)
    forest.sort(key=lambda node: node.get("start_epoch") or 0.0)
    return forest

# Per-worker-process serving state for the "process" analysis backend:
# each long-lived pool worker lazily builds the default registry and one
# TraceCache per kernel, so it records a kernel's trace once and replays
# it for every later request it handles.
_WORKER_STATE: dict[str, Any] | None = None


def _worker_entry_cache(
    kernel_id: str, validate: bool, store_dir: "str | None"
) -> tuple[KernelEntry, TraceCache]:
    """This worker's registry entry and TraceCache for one kernel.

    With a ``store_dir`` every pool worker attaches the *persisted* tape
    instead of re-recording its own copy: the first worker to record a
    kernel saves the tape, and every other worker (and every restart)
    warm-starts from disk.
    """
    global _WORKER_STATE
    if _WORKER_STATE is None:
        _WORKER_STATE = {"registry": default_registry(), "caches": {}}
    entry = _WORKER_STATE["registry"][kernel_id]
    cache = _WORKER_STATE["caches"].get(kernel_id)
    if cache is None:
        cache = _WORKER_STATE["caches"].setdefault(
            kernel_id, TraceCache(validate=validate, store_dir=store_dir)
        )
    return entry, cache


def _analyse_in_worker_process(
    kernel_id: str,
    intervals: tuple,
    validate: bool,
    store_dir: "str | None" = None,
) -> tuple[bytes, str]:
    """Run one /analyse request inside a repro.mp pool worker.

    Returns the serialized report body and the cache outcome.  The body
    is byte-identical to the thread backend's response for the same
    ranges — recording and replay serialize identically, so it does not
    matter which worker (or how cold) answers.
    """
    entry, cache = _worker_entry_cache(kernel_id, validate, store_dir)
    report, outcome = cache.analyse_outcome(
        entry.cache_key,
        entry.recorder,
        list(intervals),
        simplify=entry.simplify,
    )
    return report_to_json(report).encode("utf-8"), outcome


def _analyse_batch_in_worker_process(
    kernel_id: str,
    intervals_batch: tuple,
    validate: bool,
    store_dir: "str | None" = None,
) -> list:
    """Run one coalesced /analyse batch inside a repro.mp pool worker.

    Returns one picklable tagged item per request (``("ok", body,
    outcome)`` / ``("err", message)``), bodies byte-identical to what
    the same requests would have answered unbatched.
    """
    entry, cache = _worker_entry_cache(kernel_id, validate, store_dir)
    try:
        outcomes = cache.analyse_batch_outcome(
            entry.cache_key,
            entry.recorder,
            [list(intervals) for intervals in intervals_batch],
            simplify=entry.simplify,
        )
        return [
            ("ok", report_to_json(report).encode("utf-8"), outcome)
            for report, outcome in outcomes
        ]
    except Exception:
        # Batch-level failure (e.g. an ambiguous comparison poisoning
        # the shared sweep): retry each request alone so only the
        # culprits fail — identical outcome to unbatched dispatch.
        items: list = []
        for intervals in intervals_batch:
            try:
                report, outcome = cache.analyse_outcome(
                    entry.cache_key,
                    entry.recorder,
                    list(intervals),
                    simplify=entry.simplify,
                )
                items.append(
                    ("ok", report_to_json(report).encode("utf-8"), outcome)
                )
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                items.append(("err", f"{type(exc).__name__}: {exc}"))
        return items


def _advise_in_worker_process(
    kernel_id: str,
    intervals: tuple,
    threshold: float,
    validate: bool,
    store_dir: "str | None" = None,
) -> tuple[dict, str]:
    """Run one /advise body inside a repro.mp pool worker."""
    from repro.scorpio.advisor import render_advice, suggest_approximations

    entry, cache = _worker_entry_cache(kernel_id, validate, store_dir)
    report, outcome = cache.analyse_outcome(
        entry.cache_key,
        entry.recorder,
        list(intervals),
        simplify=entry.simplify,
    )
    suggestions = suggest_approximations(report, float(threshold))
    return (
        {
            "kernel": kernel_id,
            "threshold": float(threshold),
            "suggestions": [
                {
                    "node_id": s.node_id,
                    "op": s.op,
                    "replacement": s.replacement,
                    "significance": s.significance,
                    "cost_saving": s.cost_saving,
                    "score": s.score,
                }
                for s in suggestions
            ],
            "advice": render_advice(suggestions),
        },
        outcome,
    )


def _tune_in_worker_process(
    kernel_id: str,
    size: "int | None",
    target_quality: "float | None",
    energy_budget: "float | None",
) -> dict:
    """Run one /tune body inside a repro.mp pool worker."""
    from repro.runtime.tuning import (
        best_quality_under_energy,
        min_ratio_for_quality,
    )

    setup = tune_setup(kernel_id, size)
    if target_quality is not None:
        result = min_ratio_for_quality(
            setup.evaluate,
            float(target_quality),
            higher_is_better=setup.higher_is_better,
        )
        mode = "target_quality"
    else:
        result = best_quality_under_energy(
            setup.evaluate,
            float(energy_budget),
            higher_is_better=setup.higher_is_better,
        )
        mode = "energy_budget"
    return {
        "kernel": kernel_id,
        "mode": mode,
        "taskwait": {"ratio": result.ratio},
        "ratio": result.ratio,
        "quality": result.quality,
        "quality_metric": setup.quality_metric,
        "energy": result.energy,
        "satisfied": result.satisfied,
        "workload": setup.workload,
        "probes": {
            f"{ratio:.6g}": {"quality": q, "energy": e}
            for ratio, (q, e) in sorted(result.probes.items())
        },
    }


class SignificanceService:
    """Significance-analysis-as-a-service over a kernel registry."""

    def __init__(
        self,
        registry: dict[str, KernelEntry] | None = None,
        config: ServiceConfig | None = None,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.config = config or ServiceConfig()
        backend = (self.config.executor or "thread").strip().lower()
        if backend not in ("thread", "process"):
            raise ValueError(
                f"unknown serve executor {self.config.executor!r}; "
                "expected 'thread' or 'process'"
            )
        self.config.executor = backend
        self._mp = None
        if backend == "process":
            if registry is not None:
                raise ValueError(
                    "executor='process' serves the default registry only "
                    "(pool workers rebuild it; a custom registry would "
                    "not reach them)"
                )
            from repro.mp import ProcessExecutor

            self._mp = ProcessExecutor(
                max_workers=self.config.workers
            ).warm()
        # Resolve the persistent tape store once so /healthz (and the
        # pool workers) see the effective directory, env var included.
        if self.config.store_dir is None:
            self.config.store_dir = os.environ.get("REPRO_TAPE_DIR") or None
        self.caches: dict[str, TraceCache] = {
            kid: TraceCache(
                validate=self.config.validate,
                store_dir=self.config.store_dir,
            )
            for kid in self.registry
        }
        if self.config.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        # One request coalescer per kernel (max_batch=1 -> none; the
        # unbatched dispatch path is used verbatim).
        self._batchers: dict[str, KernelBatcher] | None = None
        if self.config.max_batch > 1:
            window = max(0.0, self.config.batch_window_ms) / 1000.0
            self._batchers = {
                kid: KernelBatcher(
                    window=window,
                    max_batch=self.config.max_batch,
                    dispatch=self._make_batch_dispatch(entry),
                    name=kid,
                )
                for kid, entry in self.registry.items()
            }
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        # The always-on flight recorder behind GET /debug/requests and
        # /debug/trace/<id>, with the per-kernel latency SLOs.
        self.flight = FlightRecorder(capacity=self.config.flight_capacity)
        for kid, entry in self.registry.items():
            slo = (
                entry.slo_ms
                if entry.slo_ms is not None
                else self.config.default_slo_ms
            )
            if slo is not None:
                self.flight.set_slo(kid, slo)
        self._started = time.time()
        self.server = HttpServer(
            self._build_router(),
            host=self.config.host,
            port=self.config.port,
            request_timeout=self.config.request_timeout,
            max_body=self.config.max_body,
        )
        # Last: turn on span recording for the service's lifetime (the
        # pool, if any, was warmed above, so fork-started workers do not
        # inherit the flag — _worker_run carries it per task instead).
        # close() restores the caller's flag.
        self._prev_tracing: "bool | None" = None
        if self.config.tracing:
            self._prev_tracing = obs_trace.set_enabled(True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listening socket; returns the bound (host, port)."""
        return await self.server.start()

    async def serve_forever(self) -> None:
        await self.server.serve_forever()

    async def close(self) -> None:
        await self.server.close()
        if self._batchers is not None:
            for batcher in self._batchers.values():
                batcher.close()
        self._executor.shutdown(wait=False)
        if self._mp is not None:
            self._mp.close()
        if self._prev_tracing is not None:
            obs_trace.set_enabled(self._prev_tracing)
            self._prev_tracing = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _build_router(self) -> Router:
        router = Router()
        router.get("/healthz", self._timed("healthz", self._handle_healthz))
        router.get("/kernels", self._timed("kernels", self._handle_kernels))
        router.get("/metrics", self._timed("metrics", self._handle_metrics))
        router.post("/analyse", self._timed("analyse", self._handle_analyse))
        router.post("/advise", self._timed("advise", self._handle_advise))
        router.post("/tune", self._timed("tune", self._handle_tune))
        router.get(
            "/debug/requests",
            self._timed("debug", self._handle_debug_requests),
        )
        router.get_prefix(
            "/debug/trace/",
            self._timed("debug", self._handle_debug_trace),
        )
        return router

    def _timed(
        self,
        name: str,
        handler: Callable[[Request], Any],
    ) -> Callable[[Request], Any]:
        """Wrap a handler with latency metrics, trace context and the
        flight recorder.

        Each request's ``X-Repro-Trace`` header is parsed (or a fresh
        trace minted), a manual request span is opened under it — manual
        because the handler awaits, so a stack-based span would mis-nest
        concurrently interleaving requests — and the span's own context
        is made current for the handler, parenting everything downstream
        (batcher, thread pool, process workers).  The span's context is
        stamped back onto the response so callers can fetch
        ``/debug/trace/<id>``; one :class:`RequestRecord` lands in the
        flight recorder whatever the outcome.
        """
        histogram = _H_LATENCY[name]

        async def wrapped(request: Request) -> Response:
            _C_REQUESTS.inc()
            ctx_in = obs_context.parse_header(
                request.headers.get("x-repro-trace")
            )
            if ctx_in is None:
                ctx_in = obs_context.new_trace()
            own = ctx_in.child()
            sp = obs_trace.manual_span(
                f"serve.{name}", own, method=request.method, path=request.path
            )
            info: dict[str, Any] = {"stages": {}}
            info_token = _REQ_INFO.set(info)
            status = 200
            error = ""
            t0 = time.perf_counter()
            try:
                with obs_context.use(own):
                    response = await handler(request)
                status = response.status
                response.headers.setdefault(
                    obs_context.HEADER, own.to_header()
                )
                return response
            except HttpError as exc:
                status = exc.status
                error = exc.detail or exc.reason
                _C_ERRORS.inc()
                raise
            except Exception as exc:
                status = 500
                error = f"{type(exc).__name__}: {exc}"
                _C_ERRORS.inc()
                raise
            finally:
                elapsed = time.perf_counter() - t0
                histogram.observe(elapsed * 1000.0)
                _REQ_INFO.reset(info_token)
                sp.set(status=status)
                if error:
                    sp.set(error=error)
                obs_trace.adopt([sp.finish()])
                if name not in ("metrics", "healthz", "debug"):
                    self.flight.record(
                        RequestRecord(
                            trace_id=own.trace_id,
                            path=request.path,
                            kernel=info.get("kernel", ""),
                            status=status,
                            outcome=info.get("outcome", ""),
                            batch_size=info.get("batch_size", 1),
                            batch_index=info.get("batch_index", 0),
                            executor=self.config.executor,
                            duration_seconds=elapsed,
                            stages=info["stages"],
                            error=error,
                        )
                    )

        return wrapped

    async def _in_worker(self, fn: Callable[[], Any]) -> Any:
        """Run blocking analysis work off the event loop.

        ``run_in_executor`` does not carry contextvars onto the pool
        thread; :func:`repro.obs.context.run_with` is the explicit hop
        that keeps the request's trace context attached to its work.
        """
        loop = asyncio.get_running_loop()
        ctx = obs_context.current()
        return await loop.run_in_executor(
            self._executor, lambda: obs_context.run_with(ctx, fn)
        )

    def _entry(self, payload: dict) -> KernelEntry:
        kernel_id = payload.get("kernel")
        if not isinstance(kernel_id, str) or not kernel_id:
            raise HttpError(400, "missing required field 'kernel'")
        entry = self.registry.get(kernel_id)
        if entry is None:
            raise HttpError(
                404,
                f"unknown kernel {kernel_id!r}; "
                f"known: {', '.join(sorted(self.registry))}",
            )
        return entry

    def _intervals(self, payload: dict, entry: KernelEntry):
        try:
            return parse_intervals(payload.get("inputs"), entry)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc

    def _analyse_entry(self, entry: KernelEntry, intervals) -> tuple[Any, str]:
        """(report, cache outcome) through the kernel's TraceCache."""
        cache = self.caches[entry.kernel_id]
        report, outcome = cache.analyse_outcome(
            entry.cache_key,
            entry.recorder,
            intervals,
            simplify=entry.simplify,
        )
        counter = _OUTCOME_COUNTER.get(outcome)
        if counter is not None:
            counter.inc()
        return report, outcome

    def _mp_analyse_entry(
        self, entry: KernelEntry, intervals
    ) -> tuple[bytes, str]:
        """(response body, cache outcome) via the process backend."""
        from repro.runtime.task import ExecutionMode, Task

        task = Task(
            fn=_analyse_in_worker_process,
            args=(
                entry.kernel_id,
                tuple(intervals),
                self.config.validate,
                self.config.store_dir,
            ),
            label="serve.analyse",
        )
        [result] = self._mp.run([task], [ExecutionMode.ACCURATE])
        body, outcome = result.value
        counter = _OUTCOME_COUNTER.get(outcome)
        if counter is not None:
            counter.inc()
        return body, outcome

    # ------------------------------------------------------------------
    # Batched dispatch (micro-batching of POST /analyse)
    # ------------------------------------------------------------------
    def _make_batch_dispatch(self, entry: KernelEntry):
        """The async dispatch a kernel's :class:`KernelBatcher` calls.

        Ships the whole coalesced batch to the same executor the
        unbatched path uses (thread pool, or one repro.mp pool worker),
        where it runs as ONE lane-batched replay sweep.
        """

        async def dispatch(batch: list) -> list:
            if self._mp is not None:
                return await self._in_worker(
                    lambda: self._mp_batch_analyse_entry(entry, batch)
                )
            return await self._in_worker(
                lambda: self._batch_analyse_entry(entry, batch)
            )

        return dispatch

    def _count_item(self, item: tuple) -> tuple:
        if item[0] == "ok":
            counter = _OUTCOME_COUNTER.get(item[2])
            if counter is not None:
                counter.inc()
        return item

    def _batch_analyse_entry(self, entry: KernelEntry, batch: list) -> list:
        """Tagged per-request results of one coalesced batch (thread)."""
        cache = self.caches[entry.kernel_id]
        try:
            outcomes = cache.analyse_batch_outcome(
                entry.cache_key,
                entry.recorder,
                batch,
                simplify=entry.simplify,
            )
            return [
                self._count_item(
                    ("ok", report_to_json(report).encode("utf-8"), outcome)
                )
                for report, outcome in outcomes
            ]
        except Exception:
            # Batch-level failure: retry each request alone so only the
            # culprits fail, exactly as if they had never been batched.
            items = []
            for intervals in batch:
                try:
                    report, outcome = self._analyse_entry(entry, intervals)
                    body = report_to_json(report).encode("utf-8")
                    items.append(("ok", body, outcome))
                except Exception as exc:  # noqa: BLE001 - isolated per req
                    items.append(("err", exc))
            return items

    def _mp_batch_analyse_entry(
        self, entry: KernelEntry, batch: list
    ) -> list:
        """Tagged per-request results of one coalesced batch (process)."""
        from repro.runtime.task import ExecutionMode, Task

        task = Task(
            fn=_analyse_batch_in_worker_process,
            args=(
                entry.kernel_id,
                tuple(tuple(intervals) for intervals in batch),
                self.config.validate,
                self.config.store_dir,
            ),
            label="serve.analyse_batch",
        )
        [result] = self._mp.run([task], [ExecutionMode.ACCURATE])
        return [self._count_item(item) for item in result.value]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> Response:
        degraded = self.flight.degraded_kernels()
        return json_response(
            {
                "status": "ok",
                "version": _VERSION,
                "uptime_seconds": round(time.time() - self._started, 3),
                "kernels": sorted(self.registry),
                # The analysis backend, so deploy smoke checks can assert
                # which executor actually serves /analyse.
                "executor": self.config.executor,
                "workers": self.config.workers,
                # Micro-batching + warm-start configuration, so deploys
                # can assert the coalescer and tape store are live.
                "batch_window_ms": self.config.batch_window_ms,
                "max_batch": self.config.max_batch,
                "store_dir": self.config.store_dir,
                # Observability: span recording state and the flight
                # recorder's SLO verdict.  "degraded" means at least one
                # kernel's most recent request exceeded its latency SLO.
                "tracing": obs_trace.enabled(),
                "degraded": bool(degraded),
                "degraded_kernels": degraded,
            }
        )

    async def _handle_kernels(self, request: Request) -> Response:
        kernels = []
        for kid in sorted(self.registry):
            entry = self.registry[kid]
            kernels.append(
                {
                    "id": kid,
                    "summary": entry.summary,
                    "inputs": entry.n_inputs,
                    "input_names": list(entry.input_names),
                    "simplify": entry.simplify,
                    "quality_metric": entry.quality_metric,
                    "cache": self.caches[kid].stats(),
                }
            )
        return json_response({"kernels": kernels})

    async def _handle_metrics(self, request: Request) -> Response:
        return Response(
            body=obs_metrics.to_prometheus().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_debug_requests(self, request: Request) -> Response:
        try:
            limit = int(request.query.get("limit", "50"))
        except ValueError as exc:
            raise HttpError(400, "'limit' must be an integer") from exc
        return json_response(
            {
                "requests": self.flight.requests(limit=limit),
                "recorded": len(self.flight),
                "degraded_kernels": self.flight.degraded_kernels(),
            }
        )

    async def _handle_debug_trace(self, request: Request) -> Response:
        trace_id = request.path.removeprefix("/debug/trace/").strip("/")
        if obs_context.parse_header(trace_id) is None:
            raise HttpError(
                400, f"{trace_id!r} is not a trace id (32 hex chars)"
            )
        record = self.flight.for_trace(trace_id)
        spans = _assemble_trace(trace_id)
        if record is None and not spans:
            raise HttpError(
                404,
                f"trace {trace_id} not found (flight recorder keeps the "
                f"last {self.config.flight_capacity} requests; span "
                "recording requires tracing)",
            )
        return json_response(
            {"trace_id": trace_id, "request": record, "spans": spans}
        )

    async def _handle_analyse(self, request: Request) -> Response:
        payload = request.json()
        entry = self._entry(payload)
        intervals = self._intervals(payload, entry)
        info = _request_info()
        if info is not None:
            info["kernel"] = entry.kernel_id
        t_dispatch = time.perf_counter()
        if self._batchers is not None:
            item, size, index = await self._batchers[entry.kernel_id].submit(
                intervals
            )
            if info is not None:
                info["stages"]["dispatch"] = time.perf_counter() - t_dispatch
                info["batch_size"] = size
                info["batch_index"] = index
                if item[0] == "ok":
                    info["outcome"] = item[2]
            if item[0] != "ok":
                detail = item[1]
                if isinstance(detail, BaseException):
                    raise detail
                raise HttpError(500, str(detail))
            _, body, outcome = item
            batch_header = f"{size}/{index}"
        elif self._mp is not None:
            body, outcome = await self._in_worker(
                lambda: self._mp_analyse_entry(entry, intervals)
            )
            batch_header = "1/0"
        else:
            report, outcome = await self._in_worker(
                lambda: self._analyse_entry(entry, intervals)
            )
            # The body is exactly the in-process serialisation —
            # byte-identical to report_to_json of a local analysis of
            # the same ranges.
            body = report_to_json(report).encode("utf-8")
            batch_header = "1/0"
        if info is not None:
            info["outcome"] = outcome
            info["stages"].setdefault(
                "dispatch", time.perf_counter() - t_dispatch
            )
        return Response(
            body=body,
            headers={
                "X-Repro-Cache": outcome,
                "X-Repro-Kernel": entry.kernel_id,
                # "<batch size>/<lane index>": how many requests shared
                # this response's replay sweep and which lane this one
                # was.  "1/0" means it rode alone.
                "X-Repro-Batch": batch_header,
            },
        )

    async def _handle_advise(self, request: Request) -> Response:
        from repro.scorpio.advisor import render_advice, suggest_approximations

        payload = request.json()
        entry = self._entry(payload)
        intervals = self._intervals(payload, entry)
        threshold = payload.get("threshold", 0.25)
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            raise HttpError(400, "'threshold' must be a number")

        if self._mp is not None:
            # Like /analyse, the body runs in a pool worker (the worker
            # analyses against its own cache and renders the advice
            # there — the report object never crosses the pipe).
            from repro.runtime.task import ExecutionMode, Task

            def work():
                task = Task(
                    fn=_advise_in_worker_process,
                    args=(
                        entry.kernel_id,
                        tuple(intervals),
                        float(threshold),
                        self.config.validate,
                        self.config.store_dir,
                    ),
                    label="serve.advise",
                )
                [result] = self._mp.run([task], [ExecutionMode.ACCURATE])
                return result.value

            payload_out, outcome = await self._in_worker(work)
            counter = _OUTCOME_COUNTER.get(outcome)
            if counter is not None:
                counter.inc()
            return json_response(
                payload_out, headers={"X-Repro-Cache": outcome}
            )

        def work():
            report, outcome = self._analyse_entry(entry, intervals)
            return suggest_approximations(report, float(threshold)), outcome

        suggestions, outcome = await self._in_worker(work)
        return json_response(
            {
                "kernel": entry.kernel_id,
                "threshold": float(threshold),
                "suggestions": [
                    {
                        "node_id": s.node_id,
                        "op": s.op,
                        "replacement": s.replacement,
                        "significance": s.significance,
                        "cost_saving": s.cost_saving,
                        "score": s.score,
                    }
                    for s in suggestions
                ],
                "advice": render_advice(suggestions),
            },
            headers={"X-Repro-Cache": outcome},
        )

    async def _handle_tune(self, request: Request) -> Response:
        payload = request.json()
        entry = self._entry(payload)
        target_quality = payload.get("target_quality")
        energy_budget = payload.get("energy_budget")
        if (target_quality is None) == (energy_budget is None):
            raise HttpError(
                400,
                "provide exactly one of 'target_quality' (min ratio "
                "meeting a quality floor) or 'energy_budget' (best "
                "quality within a budget)",
            )
        size = payload.get("size")
        if size is not None and (
            not isinstance(size, int) or isinstance(size, bool) or size < 2
        ):
            raise HttpError(400, "'size' must be an integer >= 2")

        if self._mp is not None:
            # Ratio-search bodies follow the backend too: run the whole
            # probe loop in a pool worker and relay its JSON payload.
            from repro.runtime.task import ExecutionMode, Task

            def work():
                task = Task(
                    fn=_tune_in_worker_process,
                    args=(
                        entry.kernel_id,
                        size,
                        None if target_quality is None else float(target_quality),
                        None if energy_budget is None else float(energy_budget),
                    ),
                    label="serve.tune",
                )
                [result] = self._mp.run([task], [ExecutionMode.ACCURATE])
                return result.value

            return json_response(await self._in_worker(work))

        def work():
            return _tune_in_worker_process(
                entry.kernel_id,
                size,
                None if target_quality is None else float(target_quality),
                None if energy_budget is None else float(energy_budget),
            )

        return json_response(await self._in_worker(work))


class ServiceThread:
    """Run a :class:`SignificanceService` on a background thread.

    The in-process deployment used by the example tenants, the tests and
    the load generator::

        with ServiceThread() as service:
            client = service.client()
            report = client.analyse("blackscholes")

    Binds port 0 by default (the OS picks a free port) and publishes the
    bound address via :attr:`host`/:attr:`port` once :meth:`start`
    returns.
    """

    def __init__(
        self,
        registry: dict[str, KernelEntry] | None = None,
        config: ServiceConfig | None = None,
    ):
        if config is None:
            config = ServiceConfig(port=0)
        self.service = SignificanceService(registry, config)
        self.host: str | None = None
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.host, self.port = await self.service.start()
        except BaseException as exc:  # noqa: BLE001
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.service.close()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    def client(self, timeout: float = 60.0):
        from .client import ServiceClient

        assert self.host is not None and self.port is not None
        return ServiceClient(self.host, self.port, timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
