"""Process-pool task executor with the runtime's ordering contract.

:class:`ProcessExecutor` is the multicore sibling of
:class:`repro.runtime.executor.ThreadedExecutor`: it satisfies the same
``Executor`` protocol (dense, submission-ordered results; DROPPED tasks
never reach the pool) but runs task functions in worker *processes*, so
pure-Python work actually scales past the GIL.

The contract differs from the thread pool in one way that matters:
**tasks must communicate through return values** (or shared memory, see
:mod:`repro.mp.shared`).  A worker mutating an argument array mutates its
own copy — the mutation never reaches the parent.  The bundled kernel
task groups (Sobel, BlackScholes runners) rely on in-place writes to
shared output arrays and therefore stay on the seq/thread executors; the
process pool is for value-returning tasks and for the shared-tape lane
drivers in :mod:`repro.mp.drivers`.

Robustness: a worker crash (``BrokenProcessPool``), a per-task timeout or
an unpicklable task falls back to running the affected tasks sequentially
in the parent — the batch always completes with correct, ordered results;
the fallback is counted in :mod:`repro.obs` metrics
(``mp.fallbacks``).  Worker-side metric activity is snapshot-deltaed and
merged back into the parent registry after every batch.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from repro.obs import context as _context
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import span as _obs_span
from repro.runtime.executor import (
    Executor,
    SequentialExecutor,
    ThreadedExecutor,
    _run_one,
)
from repro.runtime.task import ExecutionMode, Task, TaskResult

__all__ = ["ProcessExecutor", "make_executor", "default_workers"]

_C_TASKS = _metrics.counter("mp.tasks")
_C_BATCHES = _metrics.counter("mp.batches")
_C_FALLBACKS = _metrics.counter("mp.fallbacks")


def default_workers() -> int:
    """Worker count when the caller does not pin one.

    ``REPRO_MP_WORKERS`` (used by CI to force multi-worker runs on small
    runners) wins over the CPU count.
    """
    env = os.environ.get("REPRO_MP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _worker_run(
    fn: Any,
    args: tuple,
    kwargs: dict,
    mode_name: str,
    label: str,
    ctx: "Any | None" = None,
    tracing: bool = False,
) -> tuple[Any, float, dict, list]:
    """Run one task body in a worker.

    Returns ``(value, elapsed, metrics Δ, spans)``.  ``ctx`` is the
    submitting thread's :class:`~repro.obs.context.TraceContext`, pickled
    across the boundary: activating it here makes every worker-side span
    stamp the originating trace id and re-parent onto the submitting
    span.  ``tracing`` mirrors the parent's flag (fork inherits it but
    spawn does not); when set, the spans this task records are diverted
    from the worker's ring into the returned list so the parent can
    :func:`~repro.obs.trace.adopt` them.
    """
    before = _metrics.snapshot()
    captured: list = []
    previous = _trace.set_enabled(True) if tracing else None
    try:
        with _context.use(ctx), _trace.collect(captured):
            with _obs_span("runtime.task") as sp:
                sp.set(label=label, mode=mode_name, worker_pid=os.getpid())
                start = time.perf_counter()
                value = fn(*args, **kwargs)
                elapsed = time.perf_counter() - start
    finally:
        if previous is not None:
            _trace.set_enabled(previous)
    delta = _metrics.snapshot_delta(before, _metrics.snapshot())
    return value, elapsed, delta, captured


class ProcessExecutor:
    """Run tasks on a process pool; results dense and submission-ordered.

    Parameters:
        max_workers: pool size (default: :func:`default_workers`).
        task_timeout: per-task seconds before giving up on the pool and
            re-running the task (and all later unfinished ones) in the
            parent; ``None`` waits forever.
        mp_context: ``multiprocessing`` start-method name (``"fork"``,
            ``"spawn"``, ...) or a context object; default is the
            platform default.
        fallback: when False, pool failures propagate instead of
            triggering the sequential fallback (tests use this).

    The pool is created lazily on the first batch and reused; ``close()``
    (or use as a context manager) shuts it down.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        task_timeout: float | None = None,
        mp_context: Any = None,
        fallback: bool = True,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or default_workers()
        self.task_timeout = task_timeout
        self.fallback = fallback
        self._mp_context = mp_context
        self._pool = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            ctx = self._mp_context
            if isinstance(ctx, str):
                import multiprocessing

                ctx = multiprocessing.get_context(ctx)
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=ctx
            )
        return self._pool

    def _discard_pool(self, wait: bool = False) -> None:
        # wait=False on the fallback path: a hung or dead worker must not
        # block the parent, which is about to re-run the batch itself.
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def warm(self) -> "ProcessExecutor":
        """Create the worker pool now instead of on the first batch.

        Callers that will ``run()`` from several threads (the serve
        backend) warm the pool once up front so the lazy creation never
        races.
        """
        self._ensure_pool()
        return self

    def close(self) -> None:
        """Shut the pool down (idempotent).

        Waits for the pool's management thread so nothing races the
        interpreter-exit hooks in ``concurrent.futures``.
        """
        self._discard_pool(wait=True)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------
    def run(
        self, tasks: Sequence[Task], modes: Sequence[ExecutionMode]
    ) -> list[TaskResult]:
        """Execute a batch; same result shape as the threaded executor."""
        if len(tasks) != len(modes):
            raise ValueError("tasks and modes must be parallel sequences")
        _C_BATCHES.inc()
        results: list[TaskResult | None] = [None] * len(tasks)
        pending: list[int] = []
        for i, (task, mode) in enumerate(zip(tasks, modes)):
            if mode is ExecutionMode.DROPPED:
                results[i] = TaskResult(task, mode, None, 0.0)
            else:
                pending.append(i)
        if pending:
            try:
                self._run_pool(tasks, modes, results, pending)
            except _PoolFailure as failure:
                if not self.fallback:
                    raise failure.cause
                _C_FALLBACKS.inc()
                self._discard_pool()
                for i in pending:
                    if results[i] is None:
                        results[i] = _run_one(tasks[i], modes[i])
        if any(r is None for r in results):  # pragma: no cover - invariant
            missing = [i for i, r in enumerate(results) if r is None]
            raise RuntimeError(f"tasks {missing} produced no result")
        return results  # type: ignore[return-value]

    def _run_pool(
        self,
        tasks: Sequence[Task],
        modes: Sequence[ExecutionMode],
        results: list[TaskResult | None],
        pending: Sequence[int],
    ) -> None:
        pool = self._ensure_pool()
        tracing = _trace.enabled()
        ctx = _context.current()
        futures = []
        for i in pending:
            task, mode = tasks[i], modes[i]
            fn = task.fn if mode is ExecutionMode.ACCURATE else task.approx_fn
            if fn is None:
                raise ValueError(f"task {task.task_id} has no approximate version")
            try:
                future = pool.submit(
                    _worker_run, fn, task.args, task.kwargs, mode.name,
                    task.label, ctx, tracing,
                )
            except Exception as exc:
                # A dead or shut-down pool cannot accept work; that is an
                # infrastructure failure, not a task failure.
                raise _PoolFailure(exc) from exc
            futures.append((i, future))
        try:
            for i, future in futures:
                try:
                    value, elapsed, delta, worker_spans = future.result(
                        self.task_timeout
                    )
                except FutureTimeoutError as exc:
                    raise _PoolFailure(
                        TimeoutError(
                            f"task {tasks[i].task_id} exceeded "
                            f"{self.task_timeout}s on the process pool"
                        )
                    ) from exc
                except BrokenProcessPool as exc:
                    raise _PoolFailure(exc) from exc
                except Exception as exc:
                    # A worker raising inside fn re-raises here with the
                    # original type — that must propagate as-is, matching
                    # the threaded executor.  Submission-side pickling
                    # failures also surface through future.result() with
                    # their own types; those are infrastructure and are
                    # eligible for the sequential fallback (the task never
                    # ran, so re-running it is safe).
                    if _is_pickling_error(exc):
                        raise _PoolFailure(exc) from exc
                    raise
                _C_TASKS.inc()
                _metrics.registry().merge_snapshot(delta)
                if worker_spans:
                    # Worker-side trees come home stamped with the
                    # originating trace context; the parent ring is the
                    # one place debug endpoints and exporters read.
                    _trace.adopt(worker_spans)
                # Rebind the *parent's* task object: the worker ran a
                # pickled copy, and callers identity-match results
                # against their submitted tasks.
                results[i] = TaskResult(tasks[i], modes[i], value, elapsed)
        finally:
            for _, future in futures:
                future.cancel()


class _PoolFailure(Exception):
    """Internal: wraps an infrastructure error eligible for fallback."""

    def __init__(self, cause: BaseException):
        super().__init__(str(cause))
        self.cause = cause


def _is_pickling_error(exc: BaseException) -> bool:
    """Errors raised while shipping a task to a worker, not by the task.

    Unpicklable callables raise ``PicklingError`` (lambdas) or
    ``AttributeError``/``TypeError`` with a "pickle" message (local
    objects, open handles) from the pool's feeder thread.
    """
    import pickle

    if isinstance(exc, pickle.PickleError):
        return True
    if isinstance(exc, (TypeError, AttributeError)):
        return "pickle" in str(exc).lower()
    return False


def make_executor(
    spec: "str | Executor | None" = None, workers: int | None = None
) -> Executor:
    """Resolve an executor spec string (or pass an instance through).

    ``"seq"``/``"sequential"`` → :class:`SequentialExecutor`;
    ``"thread"``/``"threaded"`` → :class:`ThreadedExecutor`;
    ``"process"`` → :class:`ProcessExecutor`; ``None`` → sequential.
    This is the single knob behind ``--executor``/``--workers`` on the
    CLI, ``TaskRuntime(executor="process")`` and the serve config.
    """
    if spec is None:
        return SequentialExecutor()
    if not isinstance(spec, str):
        return spec
    name = spec.strip().lower()
    if name in ("seq", "sequential"):
        return SequentialExecutor()
    if name in ("thread", "threaded"):
        return ThreadedExecutor(max_workers=workers or 4)
    if name == "process":
        return ProcessExecutor(max_workers=workers)
    raise ValueError(
        f"unknown executor spec {spec!r}; expected 'seq', 'thread' or 'process'"
    )
