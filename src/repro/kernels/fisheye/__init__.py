"""Fisheye lens-correction benchmark (paper Section 4.1.3)."""

from .analysis import (
    BicubicAnalysis,
    InverseMappingAnalysis,
    analyse_bicubic,
    analyse_inverse_mapping,
    coordinate_significance_map,
    coordinate_significance_vec,
)
from .bicubic import (
    PIXEL_PAIRS,
    bicubic_interp,
    bicubic_sample,
    bilinear_sample,
    cubic_weights,
)
from .geometry import LensConfig, inverse_map_grid, inverse_map_point
from .perforated import fisheye_perforated
from .sequential import default_config, fisheye_reference, make_fisheye_input
from .tasks import block_significance, fisheye_significance

__all__ = [
    "LensConfig",
    "default_config",
    "inverse_map_point",
    "inverse_map_grid",
    "cubic_weights",
    "bicubic_interp",
    "bicubic_sample",
    "bilinear_sample",
    "PIXEL_PAIRS",
    "make_fisheye_input",
    "fisheye_reference",
    "fisheye_significance",
    "fisheye_perforated",
    "block_significance",
    "analyse_inverse_mapping",
    "analyse_bicubic",
    "coordinate_significance_map",
    "coordinate_significance_vec",
    "InverseMappingAnalysis",
    "BicubicAnalysis",
]
