#!/usr/bin/env python
"""Quickstart: the paper's full workflow on the Maclaurin series.

Walks the three stages of significance-driven programming (Section 3):

1. **Analyse** — run the kernel once in interval-adjoint mode with the
   INPUT/INTERMEDIATE/OUTPUT/ANALYSE macros; dco/scorpio returns the
   simplified DynDFG with per-term significances (Figure 3).
2. **Restructure** — port the kernel to significance-tagged tasks with an
   approximate version (Listing 7).
3. **Trade off** — sweep the ``taskwait(ratio=...)`` knob and watch energy
   fall as quality degrades gracefully.

Run:  python examples/quickstart.py
"""

from repro.experiments.figure3 import figure3
from repro.kernels.maclaurin import maclaurin_series, maclaurin_tasks


def main() -> None:
    x, n = 0.49, 12

    # Stage 1: automatic significance analysis (Figure 3).
    fig = figure3(x_hat=x, n=5)
    print(fig.to_text())
    print()

    # Stage 2 + 3: the task-based kernel under different quality knobs.
    exact = maclaurin_series(x, n)
    print(f"exact value (n={n}): {exact:.10f}")
    print(f"{'ratio':>6} {'value':>14} {'abs error':>12} {'energy':>12}")
    for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
        value, runtime = maclaurin_tasks(x, n, wait_ratio=ratio)
        energy = runtime.total_energy.total
        print(
            f"{ratio:>6.2f} {value:>14.10f} {abs(value - exact):>12.2e} "
            f"{energy * 1e6:>10.1f} µJ"
        )
    print()
    print(
        "More significant terms stay accurate at every ratio; energy falls "
        "as less significant terms switch to the fast approximate pow."
    )


if __name__ == "__main__":
    main()
