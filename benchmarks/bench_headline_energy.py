"""The paper's headline: 31-91% energy reduction, mean 56% (§4.3).

Runs all five Figure 7 sweeps (reduced sizes) and aggregates the
full-approximation-vs-full-accuracy energy reduction per benchmark.
"""

import pytest

from repro.experiments import figure7_all, headline
from repro.experiments.headline import format_headline


def test_headline_energy_reduction(benchmark):
    result = benchmark.pedantic(
        lambda: headline(fast=True), rounds=1, iterations=1
    )

    # Every benchmark saves energy; the spread and mean are in the same
    # band the paper reports (31%..91%, mean 56%).
    assert result.minimum > 0.10
    assert result.maximum < 0.98
    assert 0.30 < result.mean < 0.85

    benchmark.extra_info["per_benchmark_pct"] = {
        name: round(100 * value, 1)
        for name, value in result.per_benchmark.items()
    }
    benchmark.extra_info["mean_pct"] = round(100 * result.mean, 1)
    benchmark.extra_info["paper"] = "31%..91%, mean 56%"
    benchmark.extra_info["summary"] = format_headline(result)
