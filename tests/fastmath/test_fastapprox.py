"""Tests for the fastapprox-style approximate math functions."""

import math

import numpy as np
import pytest

from repro import fastmath as fm


class TestScalarAccuracy:
    @pytest.mark.parametrize("x", [0.01, 0.1, 1.0, 2.5, 10.0, 50.0])
    def test_fast_log2(self, x):
        assert fm.fast_log2(x) == pytest.approx(math.log2(x), abs=2e-4)

    @pytest.mark.parametrize("x", [0.01, 0.5, 1.0, math.e, 20.0])
    def test_fast_log(self, x):
        assert fm.fast_log(x) == pytest.approx(math.log(x), abs=2e-4)

    @pytest.mark.parametrize("p", [-10.0, -1.5, 0.0, 0.5, 3.7, 20.0])
    def test_fast_pow2(self, p):
        assert fm.fast_pow2(p) == pytest.approx(2.0**p, rel=1e-4)

    @pytest.mark.parametrize("x", [-20.0, -5.0, -1.0, 0.0, 1.0, 5.0, 20.0])
    def test_fast_exp(self, x):
        assert fm.fast_exp(x) == pytest.approx(math.exp(x), rel=1e-4)

    @pytest.mark.parametrize(
        "x,p", [(2.0, 3.0), (10.0, 0.5), (0.5, -2.0), (7.3, 1.1)]
    )
    def test_fast_pow(self, x, p):
        assert fm.fast_pow(x, p) == pytest.approx(x**p, rel=1e-3)

    @pytest.mark.parametrize("x", [0.01, 0.5, 1.0, 2.0, 100.0, 1e6])
    def test_fast_sqrt(self, x):
        assert fm.fast_sqrt(x) == pytest.approx(math.sqrt(x), rel=5e-3)

    def test_fast_sqrt_zero(self):
        assert fm.fast_sqrt(0.0) == 0.0

    @pytest.mark.parametrize("x", [0.01, 1.0, 4.0, 1e4])
    def test_fast_rsqrt(self, x):
        assert fm.fast_rsqrt(x) == pytest.approx(1.0 / math.sqrt(x), rel=5e-3)

    @pytest.mark.parametrize("x", [-3.0, -1.0, -0.2, 0.0, 0.2, 1.0, 3.0])
    def test_fast_erf(self, x):
        assert fm.fast_erf(x) == pytest.approx(math.erf(x), abs=5e-3)

    @pytest.mark.parametrize("x", [-4.0, -1.0, 0.0, 0.5, 2.0, 4.0])
    def test_fast_cndf(self, x):
        true = 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
        assert fm.fast_cndf(x) == pytest.approx(true, abs=1e-3)

    @pytest.mark.parametrize("x", [-4.0, -1.0, 0.0, 0.5, 2.0, 4.0])
    def test_logistic_cndf_bound(self, x):
        true = 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
        assert abs(fm.logistic_cndf(x) - true) < 0.0105

    @pytest.mark.parametrize("x", [-7.0, -2.0, -0.5, 0.0, 0.5, 2.0, 7.0])
    def test_fast_sin_cos(self, x):
        assert fm.fast_sin(x) == pytest.approx(math.sin(x), abs=2e-3)
        assert fm.fast_cos(x) == pytest.approx(math.cos(x), abs=2e-3)


class TestDomainErrors:
    def test_log_domain(self):
        with pytest.raises(ValueError):
            fm.fast_log2(0.0)
        with pytest.raises(ValueError):
            fm.fast_log(-1.0)

    def test_pow_domain(self):
        with pytest.raises(ValueError):
            fm.fast_pow(-2.0, 0.5)

    def test_sqrt_domain(self):
        with pytest.raises(ValueError):
            fm.fast_sqrt(-1.0)
        with pytest.raises(ValueError):
            fm.fast_rsqrt(0.0)


class TestVectorised:
    def test_np_fast_exp_matches_scalar(self):
        xs = np.linspace(-10, 10, 101)
        vec = fm.np_fast_exp(xs)
        for x, v in zip(xs, vec):
            assert v == pytest.approx(fm.fast_exp(float(x)), rel=1e-6)

    def test_np_fast_log_accuracy(self):
        xs = np.linspace(0.01, 50, 100)
        assert np.max(np.abs(fm.np_fast_log(xs) - np.log(xs))) < 1e-3

    def test_np_fast_log_domain(self):
        with pytest.raises(ValueError):
            fm.np_fast_log(np.array([1.0, -1.0]))

    def test_np_fast_sqrt_accuracy(self):
        xs = np.linspace(0.0, 100, 100)
        rel = np.abs(fm.np_fast_sqrt(xs[1:]) - np.sqrt(xs[1:])) / np.sqrt(xs[1:])
        assert np.max(rel) < 5e-3
        assert fm.np_fast_sqrt(np.array([0.0]))[0] == 0.0

    def test_np_fast_sqrt_domain(self):
        with pytest.raises(ValueError):
            fm.np_fast_sqrt(np.array([-1.0]))

    def test_np_fast_cndf_accuracy(self):
        xs = np.linspace(-5, 5, 200)
        true = np.array([0.5 * (1 + math.erf(x / math.sqrt(2))) for x in xs])
        assert np.max(np.abs(fm.np_fast_cndf(xs) - true)) < 1e-3

    def test_np_logistic_cndf_bound(self):
        xs = np.linspace(-5, 5, 200)
        true = np.array([0.5 * (1 + math.erf(x / math.sqrt(2))) for x in xs])
        err = np.abs(fm.np_logistic_cndf(xs) - true)
        assert 0.003 < np.max(err) < 0.0105  # crude by design


class TestCosts:
    def test_fast_cheaper_than_accurate(self):
        for fast, accurate in [
            ("fast_exp", "exp"),
            ("fast_log", "log"),
            ("fast_pow", "pow"),
            ("fast_sqrt", "sqrt"),
            ("fast_cndf", "cndf"),
        ]:
            assert fm.COSTS[fast] < fm.COSTS[accurate]
