"""The disabled-path cost contract of :mod:`repro.obs.trace`.

The instrumentation budget (ISSUE 5) is <=2% on the recording hot path.
Two guarantees deliver it, and both are asserted here structurally plus
with a generous absolute timing bound (a strict relative bound would be
flaky on shared CI runners; ``benchmarks/bench_obs_overhead.py`` records
the honest measured ratio):

* ``span()`` while disabled is one attribute check returning one shared
  no-op object — no allocation, no clock read, no lock;
* ``Tape.record`` is not instrumented per-op at all (ops are counted in
  bulk at tape deactivation), so the per-op path is untouched.
"""

import time

from repro.ad import ADouble, Tape
from repro.intervals import Interval
from repro.obs import trace


def test_disabled_span_is_the_shared_null_object():
    assert trace.enabled() is False
    sp = trace.span("hot.path")
    assert sp is trace.span("another.site")
    assert sp is trace._NULL_SPAN


def test_disabled_span_calls_are_cheap():
    assert trace.enabled() is False
    n = 100_000
    span = trace.span
    t0 = time.perf_counter()
    for _ in range(n):
        with span("hot.path"):
            pass
    elapsed = time.perf_counter() - t0
    # ~100ns/call on any modern machine; the bound leaves 10x headroom
    # for loaded CI runners while still catching an accidental clock
    # read or allocation on the disabled path (those cost >=1us/call).
    assert elapsed < 1.0, f"{n} disabled span calls took {elapsed:.3f}s"
    per_call = elapsed / n
    assert per_call < 10e-6


def test_tape_record_hot_loop_has_no_per_op_instrumentation():
    # The budget holds because recording counts ops in bulk at
    # deactivation: one counter bump per tape, not per node.
    from repro.ad import tape as tape_mod

    tapes_before = tape_mod._C_TAPES.get()
    ops_before = tape_mod._C_OPS.get()
    with Tape() as tape:
        x = ADouble.input(Interval(0.2, 0.4), tape=tape)
        y = x
        for _ in range(100):
            y = y * x + y
    assert tape_mod._C_TAPES.get() == tapes_before + 1
    assert tape_mod._C_OPS.get() == ops_before + len(tape.nodes)


def test_disabled_tracing_records_nothing():
    assert trace.enabled() is False
    before = trace.spans()
    with trace.span("invisible"):
        pass
    assert trace.spans() == before
