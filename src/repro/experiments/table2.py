"""Table 2: lines of code of each benchmark variant and the overhead %.

The paper counts, per benchmark: the sequential implementation, the
parallel (task-based) implementation, the approximate task functions (A),
and the significance clauses (S); overhead = (A + S) / P.

We measure *our own* source honestly with an AST-based counter (logical
code lines, excluding comments, blank lines and docstrings), mapping each
category onto the modules/functions that play the same role:

* Sequential — the ``sequential``/support modules of the kernel;
* Parallel (P) — Sequential plus the task-orchestration module;
* Approx (A) — the approximate task functions (0 where approximation is
  "drop the task", as in DCT — the paper also reports ≈0 there);
* Significance (S) — the number of ``significance=`` clause lines.

Absolute counts differ from the paper's C++ (Python is denser); the
structure of the table and the small relative overhead are the
reproduction targets.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Iterable

from repro.kernels import blackscholes, dct, fisheye, nbody, sobel
from repro.kernels.blackscholes import data as bs_data
from repro.kernels.blackscholes import sequential as bs_sequential
from repro.kernels.blackscholes import tasks as bs_tasks
from repro.kernels.dct import sequential as dct_sequential
from repro.kernels.dct import tasks as dct_tasks
from repro.kernels.fisheye import bicubic as fe_bicubic
from repro.kernels.fisheye import geometry as fe_geometry
from repro.kernels.fisheye import sequential as fe_sequential
from repro.kernels.fisheye import tasks as fe_tasks
from repro.kernels.nbody import regions as nb_regions
from repro.kernels.nbody import simulation as nb_simulation
from repro.kernels.nbody import tasks as nb_tasks
from repro.kernels.sobel import sequential as sobel_sequential
from repro.kernels.sobel import tasks as sobel_tasks

__all__ = ["count_loc", "Table2Row", "table2", "format_table2", "main"]


def count_loc(obj: ModuleType | Callable) -> int:
    """Logical lines of code: AST statement/expr lines, no docstrings."""
    source = textwrap.dedent(inspect.getsource(obj))
    tree = ast.parse(source)
    lines: set[int] = set()

    class Visitor(ast.NodeVisitor):
        def visit(self, node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)):
                body = node.body
                # Skip a leading docstring expression.
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    body = body[1:]
                if not isinstance(node, ast.Module):
                    lines.add(node.lineno)
                for child in body:
                    self.visit(child)
                for child in ast.iter_child_nodes(node):
                    if child not in node.body:
                        self.visit(child)
                return
            if isinstance(node, ast.stmt):
                for lineno in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                    lines.add(lineno)
                return
            self.generic_visit(node)

    Visitor().visit(tree)
    return len(lines)


def _count_all(objs: Iterable[ModuleType | Callable]) -> int:
    return sum(count_loc(o) for o in objs)


def _significance_clauses(module: ModuleType) -> int:
    """Number of `significance=` clause lines in a tasks module."""
    source = inspect.getsource(module)
    return len(re.findall(r"^\s*significance=", source, flags=re.MULTILINE))


@dataclass
class Table2Row:
    """One benchmark's line counts."""

    benchmark: str
    domain: str
    sequential: int
    parallel: int
    approx: int
    significance: int

    @property
    def overhead_percent(self) -> float:
        """The paper's (A + S) / P metric."""
        return 100.0 * (self.approx + self.significance) / self.parallel


def table2() -> list[Table2Row]:
    """Measure every benchmark (Table 2's rows)."""
    rows = []

    seq = count_loc(sobel_sequential)
    rows.append(
        Table2Row(
            "Sobel Filter",
            "Image Filter",
            sequential=seq,
            parallel=seq + count_loc(sobel_tasks),
            approx=0,  # approximation = drop the B/C tasks
            significance=_significance_clauses(sobel_tasks),
        )
    )

    seq = count_loc(dct_sequential)
    rows.append(
        Table2Row(
            "DCT",
            "Multimedia",
            sequential=seq,
            parallel=seq + count_loc(dct_tasks),
            approx=0,  # approximation = drop coefficient diagonals
            significance=_significance_clauses(dct_tasks),
        )
    )

    seq = _count_all([fe_sequential, fe_geometry, fe_bicubic])
    rows.append(
        Table2Row(
            "Fisheye",
            "Multimedia",
            sequential=seq,
            parallel=seq + count_loc(fe_tasks) - count_loc(fe_tasks._approx_block),
            approx=count_loc(fe_tasks._approx_block)
            + count_loc(fe_bicubic.bilinear_sample),
            significance=_significance_clauses(fe_tasks)
            + count_loc(fe_tasks.block_significance),
        )
    )

    seq = _count_all([nb_simulation])
    rows.append(
        Table2Row(
            "N-Body",
            "Physics",
            sequential=seq,
            parallel=seq + count_loc(nb_tasks) + count_loc(nb_regions),
            approx=0,  # approximation = drop far-region tasks
            significance=_significance_clauses(nb_tasks)
            + count_loc(nb_regions.region_significance),
        )
    )

    seq = _count_all([bs_sequential, bs_data])
    rows.append(
        Table2Row(
            "BlackScholes",
            "Finance",
            sequential=seq,
            parallel=seq
            + count_loc(bs_tasks)
            - count_loc(bs_tasks.price_chunk_approx),
            approx=count_loc(bs_tasks.price_chunk_approx),
            significance=_significance_clauses(bs_tasks),
        )
    )
    return rows


def format_table2(rows: list[Table2Row] | None = None) -> str:
    """Render the table."""
    rows = rows or table2()
    header = (
        f"{'Benchmark':<14} {'Domain':<13} {'Seq':>5} {'Par(P)':>7} "
        f"{'Approx(A)':>10} {'Sig(S)':>7} {'Overhead':>9}"
    )
    lines = ["Table 2 — lines of code per benchmark variant", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.benchmark:<14} {row.domain:<13} {row.sequential:>5} "
            f"{row.parallel:>7} {row.approx:>10} {row.significance:>7} "
            f"{row.overhead_percent:>8.1f}%"
        )
    return "\n".join(lines)


def main() -> None:
    """Print Table 2."""
    print(format_table2())


if __name__ == "__main__":
    main()
