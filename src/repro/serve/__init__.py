"""repro.serve — significance-analysis-as-a-service on the TraceCache.

The paper's pitch is that interval-adjoint significance analysis is
cheap enough to drive *runtime* decisions; a significance-aware runtime
needs an online oracle answering "how much does this computation matter"
per invocation.  This package is that oracle as a network service: a
zero-dependency asyncio HTTP/JSON server exposing the repo's
record-once → compile → replay-many pipeline.

* :mod:`repro.serve.http` — minimal asyncio HTTP/1.1 (routing, JSON
  bodies, keep-alive, timeouts, structured errors).
* :mod:`repro.serve.kernels` — the registry mapping stable kernel ids
  (dct, sobel, blackscholes, fisheye, nbody) to recorders, input
  schemas, defaults and tuning setups.
* :mod:`repro.serve.app` — the service itself: ``POST /analyse`` /
  ``/advise`` / ``/tune``, ``GET /metrics`` / ``/healthz`` /
  ``/kernels``; one :class:`~repro.scorpio.TraceCache` per kernel, cold
  recording in a thread pool, warm requests served by vectorized replay.
* :mod:`repro.serve.client` — a stdlib client used by the example
  tenants, tests and the load generator.

Start a server::

    python -m repro serve --port 8077

or in-process::

    from repro.serve import ServiceThread

    with ServiceThread() as service:
        report = service.client().analyse("blackscholes")
"""

from .app import ServiceConfig, ServiceThread, SignificanceService
from .batching import KernelBatcher
from .client import ServiceClient, ServiceError
from .http import HttpError, HttpServer, Request, Response, Router
from .kernels import KernelEntry, default_registry, parse_intervals

__all__ = [
    "SignificanceService",
    "ServiceConfig",
    "ServiceThread",
    "KernelBatcher",
    "ServiceClient",
    "ServiceError",
    "KernelEntry",
    "default_registry",
    "parse_intervals",
    "HttpServer",
    "HttpError",
    "Request",
    "Response",
    "Router",
]
