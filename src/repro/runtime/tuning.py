"""Autotuning the ratio knob (§3.2: "a single knob to enforce a minimum
quality in the quality / performance-energy optimization space").

Given a callable that executes a benchmark at a ratio and scores it, the
tuners search the knob:

* :func:`min_ratio_for_quality` — cheapest ratio meeting a quality
  target (bisection over the monotone quality-vs-ratio curve);
* :func:`best_quality_under_energy` — best quality whose energy fits a
  budget (scan over a ratio grid, as energy is monotone too).

Both return a :class:`TuningResult` with the full probe trace so callers
can audit the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["TuningResult", "min_ratio_for_quality", "best_quality_under_energy"]

# (quality, energy) of one probe.
Probe = tuple[float, float]
Evaluator = Callable[[float], Probe]


@dataclass
class TuningResult:
    """Outcome of a knob search."""

    ratio: float
    quality: float
    energy: float
    probes: dict[float, Probe] = field(default_factory=dict)
    satisfied: bool = True


def min_ratio_for_quality(
    evaluate: Evaluator,
    target_quality: float,
    higher_is_better: bool = True,
    tolerance: float = 1 / 64,
) -> TuningResult:
    """Smallest ratio whose quality meets ``target_quality``.

    Assumes quality is monotone (non-decreasing for ``higher_is_better``,
    e.g. PSNR; non-increasing otherwise, e.g. relative error) in the
    ratio — which the significance scheduler guarantees by construction.
    Bisection down to ``tolerance`` in ratio space; ``satisfied=False``
    when even ratio 1.0 misses the target.
    """

    def meets(quality: float) -> bool:
        return quality >= target_quality if higher_is_better else quality <= target_quality

    probes: dict[float, Probe] = {}

    def probe(ratio: float) -> Probe:
        if ratio not in probes:
            probes[ratio] = evaluate(ratio)
        return probes[ratio]

    quality_hi, energy_hi = probe(1.0)
    if not meets(quality_hi):
        return TuningResult(
            ratio=1.0,
            quality=quality_hi,
            energy=energy_hi,
            probes=probes,
            satisfied=False,
        )
    quality_lo, energy_lo = probe(0.0)
    if meets(quality_lo):
        return TuningResult(
            ratio=0.0, quality=quality_lo, energy=energy_lo, probes=probes
        )

    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        quality_mid, _ = probe(mid)
        if meets(quality_mid):
            hi = mid
        else:
            lo = mid
    quality, energy = probe(hi)
    return TuningResult(ratio=hi, quality=quality, energy=energy, probes=probes)


def best_quality_under_energy(
    evaluate: Evaluator,
    energy_budget: float,
    higher_is_better: bool = True,
    grid: int = 11,
) -> TuningResult:
    """Best quality whose energy fits ``energy_budget``.

    Energy is monotone in the ratio, so scan a uniform grid and keep the
    largest feasible ratio (which also has the best quality under the
    monotone-quality assumption).  ``satisfied=False`` when even ratio
    0.0 exceeds the budget — the cheapest point is returned so callers
    can degrade gracefully.
    """
    if grid < 2:
        raise ValueError("grid must have at least 2 points")
    probes: dict[float, Probe] = {}
    best: TuningResult | None = None
    cheapest: TuningResult | None = None
    for k in range(grid):
        ratio = k / (grid - 1)
        quality, energy = evaluate(ratio)
        probes[ratio] = (quality, energy)
        candidate = TuningResult(
            ratio=ratio, quality=quality, energy=energy, probes=probes
        )
        if cheapest is None or energy < cheapest.energy:
            cheapest = candidate
        if energy <= energy_budget:
            if (
                best is None
                or (quality > best.quality) == higher_is_better
                or quality == best.quality
            ):
                best = candidate
    if best is not None:
        return best
    assert cheapest is not None
    cheapest.satisfied = False
    return cheapest
