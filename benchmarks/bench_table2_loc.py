"""Table 2: per-benchmark lines-of-code accounting benchmark."""

import pytest

from repro.experiments import format_table2, table2


def test_table2(benchmark):
    rows = benchmark(table2)

    assert len(rows) == 5
    for row in rows:
        # Structure of the paper's table: the task-based version adds
        # code over sequential; approximation + significance overhead is
        # a modest fraction of the parallel version.
        assert row.parallel > row.sequential
        assert 0.0 <= row.overhead_percent < 40.0

    dct_row = next(r for r in rows if r.benchmark == "DCT")
    assert dct_row.overhead_percent < 5.0  # paper reports ≈ 0%

    benchmark.extra_info["rows"] = {
        r.benchmark: {
            "sequential": r.sequential,
            "parallel": r.parallel,
            "approx": r.approx,
            "significance": r.significance,
            "overhead_pct": round(r.overhead_percent, 1),
        }
        for r in rows
    }


def test_table2_formatting(benchmark):
    text = benchmark(format_table2)
    assert "Overhead" in text
