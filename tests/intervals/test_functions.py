"""Tests for the interval intrinsic functions."""

import math

import pytest

from repro.intervals import Interval
from repro.intervals import functions as fn


def encloses(result: Interval, value: float, slack: float = 1e-12) -> bool:
    return result.lo - slack <= value <= result.hi + slack


class TestScalarPassthrough:
    """Every intrinsic doubles as the plain math function on scalars."""

    @pytest.mark.parametrize(
        "name,x",
        [
            ("sqrt", 2.0),
            ("cbrt", 8.0),
            ("exp", 1.5),
            ("expm1", 0.5),
            ("log", 3.0),
            ("log1p", 0.5),
            ("log2", 8.0),
            ("log10", 100.0),
            ("sin", 1.0),
            ("cos", 1.0),
            ("tan", 0.5),
            ("asin", 0.5),
            ("acos", 0.5),
            ("atan", 2.0),
            ("sinh", 1.0),
            ("cosh", 1.0),
            ("tanh", 1.0),
            ("erf", 0.7),
            ("erfc", 0.7),
        ],
    )
    def test_matches_math(self, name, x):
        assert getattr(fn, name)(x) == getattr(math, name)(x)

    def test_floor_ceil_round(self):
        assert fn.floor(2.7) == 2 and fn.ceil(2.3) == 3
        assert fn.round_st(2.5) == round(2.5)

    def test_minimum_maximum_clip(self):
        assert fn.minimum(1.0, 2.0) == 1.0
        assert fn.maximum(1.0, 2.0) == 2.0
        assert fn.clip(5.0, 0.0, 3.0) == 3.0

    def test_pow_hypot_atan2(self):
        assert fn.pow(2.0, 3.0) == 8.0
        assert fn.hypot(3.0, 4.0) == 5.0
        assert fn.atan2(1.0, 1.0) == pytest.approx(math.pi / 4)


class TestMonotone:
    def test_sqrt_enclosure(self):
        result = fn.sqrt(Interval(4.0, 9.0))
        assert encloses(result, 2.0) and encloses(result, 3.0)

    def test_sqrt_domain_error(self):
        with pytest.raises(ValueError, match="sqrt"):
            fn.sqrt(Interval(-1.0, 1.0))

    def test_exp_enclosure(self):
        result = fn.exp(Interval(0.0, 1.0))
        assert encloses(result, 1.0) and encloses(result, math.e)

    def test_log_enclosure(self):
        result = fn.log(Interval(1.0, math.e))
        assert encloses(result, 0.0) and encloses(result, 1.0)

    @pytest.mark.parametrize("name", ["log", "log2", "log10"])
    def test_log_domain_errors(self, name):
        with pytest.raises(ValueError):
            getattr(fn, name)(Interval(0.0, 1.0))

    def test_log1p_domain(self):
        with pytest.raises(ValueError):
            fn.log1p(Interval(-1.0, 0.0))

    def test_atan_bounds(self):
        result = fn.atan(Interval(-1e9, 1e9))
        assert result.lo > -math.pi / 2 - 1e-9
        assert result.hi < math.pi / 2 + 1e-9

    def test_tanh_erf_bounded(self):
        assert fn.tanh(Interval(-100, 100)).contains_interval(
            Interval(-0.999, 0.999)
        )
        assert fn.erf(Interval(-100, 100)).contains_interval(
            Interval(-0.999, 0.999)
        )

    def test_cbrt_negative_ok(self):
        result = fn.cbrt(Interval(-8.0, 27.0))
        assert encloses(result, -2.0) and encloses(result, 3.0)

    def test_acos_decreasing(self):
        result = fn.acos(Interval(0.0, 1.0))
        assert encloses(result, 0.0) and encloses(result, math.pi / 2)

    def test_asin_domain(self):
        with pytest.raises(ValueError):
            fn.asin(Interval(0.5, 1.5))


class TestTrig:
    def test_sin_simple_monotone(self):
        result = fn.sin(Interval(0.1, 1.0))
        assert encloses(result, math.sin(0.1)) and encloses(result, math.sin(1.0))

    def test_sin_spans_maximum(self):
        result = fn.sin(Interval(1.0, 2.5))  # pi/2 inside
        assert result.hi >= 1.0

    def test_sin_spans_minimum(self):
        result = fn.sin(Interval(4.0, 5.5))  # 3pi/2 inside
        assert result.lo <= -1.0

    def test_sin_full_period(self):
        assert fn.sin(Interval(0.0, 7.0)) == Interval(-1.0, 1.0)

    def test_sin_bounded(self):
        result = fn.sin(Interval(-50.0, 50.0))
        assert result.lo >= -1.0 and result.hi <= 1.0

    def test_cos_spans_maximum_at_zero(self):
        result = fn.cos(Interval(-0.5, 0.5))
        assert result.hi >= 1.0

    def test_cos_spans_minimum_at_pi(self):
        result = fn.cos(Interval(3.0, 3.3))
        assert result.lo <= -1.0

    def test_cos_negative_range(self):
        result = fn.cos(Interval(-2 * math.pi - 0.1, -2 * math.pi + 0.1))
        assert result.hi >= 1.0

    def test_tan_monotone_piece(self):
        result = fn.tan(Interval(-0.5, 0.5))
        assert encloses(result, math.tan(0.5)) and encloses(result, -math.tan(0.5))

    def test_tan_pole_rejected(self):
        with pytest.raises(ValueError, match="pole"):
            fn.tan(Interval(1.0, 2.0))  # pi/2 inside

    def test_cosh_minimum_at_zero(self):
        result = fn.cosh(Interval(-1.0, 2.0))
        assert result.lo <= 1.0 + 1e-12
        assert encloses(result, math.cosh(2.0))


class TestPow:
    def test_integer_exponent_sharp(self):
        result = fn.pow(Interval(-2.0, 3.0), 2)
        assert result.lo >= -1e-12

    def test_float_integer_valued(self):
        result = fn.pow(Interval(2.0, 3.0), 2.0)
        assert encloses(result, 4.0) and encloses(result, 9.0)

    def test_real_exponent(self):
        result = fn.pow(Interval(1.0, 4.0), 0.5)
        assert encloses(result, 1.0) and encloses(result, 2.0)

    def test_real_exponent_negative_base_rejected(self):
        with pytest.raises(ValueError):
            fn.pow(Interval(-1.0, 4.0), 0.5)

    def test_interval_exponent(self):
        result = fn.pow(Interval(2.0, 2.0), Interval(1.0, 2.0))
        assert encloses(result, 2.0) and encloses(result, 4.0)

    def test_point_interval_integer_exponent(self):
        result = fn.pow(Interval(-2.0, 2.0), Interval(2.0, 2.0))
        assert result.lo >= -1e-12


class TestDiscrete:
    def test_floor_exact_range(self):
        assert fn.floor(Interval(1.2, 3.8)) == Interval(1.0, 3.0)

    def test_ceil_exact_range(self):
        assert fn.ceil(Interval(1.2, 3.8)) == Interval(2.0, 4.0)

    def test_round_st_enclosure(self):
        result = fn.round_st(Interval(1.2, 3.8))
        # Must enclose round(t) for every t in [1.2, 3.8].
        assert result.lo <= 1.0 and result.hi >= 4.0

    def test_minimum_interval(self):
        result = fn.minimum(Interval(0, 3), Interval(1, 2))
        assert result == Interval(0.0, 2.0)

    def test_maximum_interval(self):
        result = fn.maximum(Interval(0, 3), Interval(1, 2))
        assert result == Interval(1.0, 3.0)

    def test_clip_inside(self):
        assert fn.clip(Interval(1, 2), 0.0, 3.0) == Interval(1.0, 2.0)

    def test_clip_saturating(self):
        assert fn.clip(Interval(-5, 10), 0.0, 3.0) == Interval(0.0, 3.0)


class TestCombined:
    def test_hypot_enclosure(self):
        result = fn.hypot(Interval(3.0, 3.0), Interval(4.0, 4.0))
        assert encloses(result, 5.0)

    def test_atan2_right_half_plane(self):
        result = fn.atan2(Interval(1.0, 1.0), Interval(1.0, 1.0))
        assert encloses(result, math.pi / 4, slack=1e-9)

    def test_atan2_cut_rejected(self):
        with pytest.raises(ValueError):
            fn.atan2(Interval(1.0), Interval(-1.0, 1.0))
