"""Tests for the Fisheye benchmark."""

import math

import numpy as np
import pytest

from repro.images import radial_scene
from repro.kernels.fisheye import (
    LensConfig,
    analyse_bicubic,
    analyse_inverse_mapping,
    bicubic_interp,
    bicubic_sample,
    bilinear_sample,
    block_significance,
    cubic_weights,
    default_config,
    fisheye_perforated,
    fisheye_reference,
    fisheye_significance,
    inverse_map_grid,
    inverse_map_point,
    make_fisheye_input,
)
from repro.metrics import psnr


@pytest.fixture(scope="module")
def config():
    return default_config(96, 64)


@pytest.fixture(scope="module")
def input_image(config):
    return make_fisheye_input(radial_scene(96, 64), config)


class TestGeometry:
    def test_centre_maps_to_centre(self, config):
        cx_o, cy_o = config.out_center
        sx, sy = inverse_map_point(config, cx_o, cy_o)
        cx_i, cy_i = config.in_center
        assert sx == pytest.approx(cx_i, abs=1e-3)
        assert sy == pytest.approx(cy_i, abs=1e-3)

    def test_corner_maps_to_inscribed_circle(self, config):
        sx, sy = inverse_map_point(config, 0.0, 0.0)
        cx_i, cy_i = config.in_center
        r_d = math.hypot(sx - cx_i, sy - cy_i)
        assert r_d == pytest.approx(min(cx_i, cy_i), rel=1e-3)

    def test_all_output_pixels_land_inside_input(self, config):
        ys, xs = np.mgrid[0 : config.out_height, 0 : config.out_width]
        sx, sy = inverse_map_grid(config, xs.astype(float), ys.astype(float))
        assert sx.min() >= 0 and sx.max() <= config.in_width - 1
        assert sy.min() >= 0 and sy.max() <= config.in_height - 1

    def test_radial_monotonicity(self, config):
        # Larger output radius -> larger input radius.
        cx_o, cy_o = config.out_center
        cx_i, cy_i = config.in_center
        radii = []
        for r_frac in (0.2, 0.5, 0.8):
            x = cx_o + r_frac * cx_o
            sx, sy = inverse_map_point(config, x, cy_o)
            radii.append(math.hypot(sx - cx_i, sy - cy_i))
        assert radii == sorted(radii)

    def test_compression_grows_with_radius(self, config):
        # d(r_d)/d(r_p) shrinks toward the border (periphery compressed).
        cx_o, cy_o = config.out_center
        step = 1.0

        def gain(x):
            sx1, _ = inverse_map_point(config, x, cy_o)
            sx2, _ = inverse_map_point(config, x + step, cy_o)
            return abs(sx2 - sx1)

        assert gain(cx_o + 2) > gain(config.out_width - 4)

    def test_grid_matches_scalar(self, config):
        xs = np.array([[3.0, 40.0]])
        ys = np.array([[5.0, 30.0]])
        gx, gy = inverse_map_grid(config, xs, ys)
        for i in range(2):
            sx, sy = inverse_map_point(config, xs[0, i], ys[0, i])
            assert gx[0, i] == pytest.approx(sx, rel=1e-12)
            assert gy[0, i] == pytest.approx(sy, rel=1e-12)


class TestBicubic:
    def test_weights_partition_unity(self):
        for t in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert sum(cubic_weights(t)) == pytest.approx(1.0)

    def test_interp_at_grid_points(self):
        window = [[float(10 * r + c) for c in range(4)] for r in range(4)]
        assert bicubic_interp(window, 0.0, 0.0) == pytest.approx(window[1][1])
        assert bicubic_interp(window, 1.0, 1.0) == pytest.approx(window[2][2])

    def test_interp_reproduces_linear(self):
        window = [[float(r + c) for c in range(4)] for r in range(4)]
        assert bicubic_interp(window, 0.5, 0.5) == pytest.approx(3.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            bicubic_interp([[1.0] * 3] * 3, 0.5, 0.5)

    def test_sample_matches_scalar(self, input_image):
        rng = np.random.default_rng(3)
        xs = rng.uniform(2, input_image.shape[1] - 3, 10)
        ys = rng.uniform(2, input_image.shape[0] - 3, 10)
        sampled = bicubic_sample(input_image, xs, ys)
        for x, y, v in zip(xs, ys, sampled):
            ix, iy = int(np.floor(x)), int(np.floor(y))
            window = [
                [float(input_image[iy + r - 1, ix + c - 1]) for c in range(4)]
                for r in range(4)
            ]
            expected = min(max(bicubic_interp(window, x - ix, y - iy), 0.0), 255.0)
            assert v == pytest.approx(expected, rel=1e-9)

    def test_bilinear_at_grid_points(self, input_image):
        out = bilinear_sample(input_image, np.array([5.0]), np.array([7.0]))
        assert out[0] == pytest.approx(input_image[7, 5])

    def test_bilinear_midpoint(self):
        img = np.array([[0.0, 10.0], [20.0, 30.0]])
        out = bilinear_sample(img, np.array([0.5]), np.array([0.5]))
        assert out[0] == pytest.approx(15.0)


class TestPipeline:
    def test_reference_output_range(self, input_image, config):
        out = fisheye_reference(input_image, config)
        assert out.shape == (config.out_height, config.out_width)
        assert out.min() >= 0.0 and out.max() <= 255.0

    def test_correction_recovers_scene_structure(self, config):
        scene = radial_scene(config.out_width, config.out_height)
        distorted = make_fisheye_input(scene, config)
        corrected = fisheye_reference(distorted, config)
        centre = (slice(16, 48), slice(24, 72))
        corr = np.corrcoef(corrected[centre].ravel(), scene[centre].ravel())[0, 1]
        assert corr > 0.8  # centre is well reconstructed


class TestAnalyses:
    def test_figure6_inner_pairs_dominate(self):
        analysis = analyse_bicubic(positions=3)
        assert set(analysis.ranking()[:2]) == {"c", "e"}

    def test_figure6_corners_least(self):
        analysis = analyse_bicubic(positions=3)
        assert set(analysis.ranking()[-2:]) == {"b", "h"}

    def test_figure6_window_validation(self):
        with pytest.raises(ValueError):
            analyse_bicubic(window=np.zeros((3, 3)))

    def test_figure5_border_more_significant(self, input_image, config):
        analysis = analyse_inverse_mapping(
            input_image, config, grid=(7, 9), jitter_samples=6
        )
        profile = analysis.radial_profile(config, bins=4)
        assert profile[-1] > 1.2 * profile[0]

    def test_figure5_normalised(self, input_image, config):
        analysis = analyse_inverse_mapping(
            input_image, config, grid=(4, 5), jitter_samples=2
        )
        assert analysis.significance.max() == pytest.approx(1.0)


class TestSignificanceVersion:
    def test_ratio_one_exact(self, input_image, config):
        run = fisheye_significance(input_image, config, 1.0)
        assert np.allclose(run.output, fisheye_reference(input_image, config))

    def test_ratio_zero_still_reasonable(self, input_image, config):
        # The 96x64 test config is deliberately tiny (blocks are coarse
        # relative to the frame); at benchmark scale (256x192) the fully
        # approximate run reaches ~30 dB — see EXPERIMENTS.md.
        ref = fisheye_reference(input_image, config)
        run = fisheye_significance(input_image, config, 0.0)
        assert psnr(ref, run.output) > 12.0  # approximation, not garbage

    def test_quality_monotone(self, input_image, config):
        ref = fisheye_reference(input_image, config)
        values = [
            min(psnr(ref, fisheye_significance(input_image, config, r).output), 99.0)
            for r in (0.0, 0.5, 1.0)
        ]
        assert values == sorted(values)

    def test_block_significance_radial(self, config):
        centre = block_significance(config, 28, 36, 44, 52)
        corner = block_significance(config, 0, 16, 0, 32)
        assert corner > centre
        assert 0.0 <= centre <= 1.0 and corner == 1.0

    def test_border_blocks_accurate_at_ratio_zero(self, input_image, config):
        ref = fisheye_reference(input_image, config)
        run = fisheye_significance(input_image, config, 0.0, block=(16, 16))
        corner = (slice(0, 16), slice(0, 16))
        assert np.allclose(run.output[corner], ref[corner])


class TestPerforated:
    def test_ratio_one_exact(self, input_image, config):
        run = fisheye_perforated(input_image, config, 1.0)
        assert np.allclose(run.output, fisheye_reference(input_image, config))

    def test_sig_beats_perforation(self, input_image, config):
        ref = fisheye_reference(input_image, config)
        for ratio in (0.2, 0.5, 0.8):
            sig_q = psnr(ref, fisheye_significance(input_image, config, ratio).output)
            perf_q = psnr(ref, fisheye_perforated(input_image, config, ratio).output)
            assert sig_q > perf_q
