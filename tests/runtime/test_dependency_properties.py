"""Property tests: random dependence graphs schedule correctly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import DependencyGraph, Task, run_with_dependencies

TAGS = ["a", "b", "c", "d"]


@st.composite
def io_decl(draw):
    reads = draw(st.lists(st.sampled_from(TAGS), max_size=2, unique=True))
    writes = draw(st.lists(st.sampled_from(TAGS), max_size=2, unique=True))
    return reads, writes


@given(st.lists(io_decl(), min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_waves_respect_every_edge(decls):
    g = DependencyGraph()
    for reads, writes in decls:
        g.add(Task(fn=lambda: None), reads=reads, writes=writes)
    waves = g.waves()

    position = {}
    for level, wave in enumerate(waves):
        for index in wave:
            position[index] = level

    # Every task scheduled exactly once.
    assert sorted(position) == list(range(len(decls)))
    # Every dependence edge crosses strictly forward in wave order.
    for a, b in g.edges():
        assert position[a] < position[b]


@given(st.lists(io_decl(), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_execution_order_linearises_edges(decls):
    g = DependencyGraph()
    log: list[int] = []
    for i, (reads, writes) in enumerate(decls):
        g.add(
            Task(fn=lambda i=i: log.append(i)),
            reads=reads,
            writes=writes,
        )
    run_with_dependencies(g)

    order = {task_index: position for position, task_index in enumerate(log)}
    assert len(log) == len(decls)
    for a, b in g.edges():
        assert order[a] < order[b]


@given(st.lists(io_decl(), min_size=2, max_size=10), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_ratio_counts_match_flat_scheduler(decls, ratio):
    from repro.runtime import plan_modes

    tasks = [Task(fn=lambda: None, significance=(i % 5) / 5.0 + 0.1) for i in range(len(decls))]
    g = DependencyGraph()
    for task, (reads, writes) in zip(tasks, decls):
        g.add(task, reads=reads, writes=writes)

    result = run_with_dependencies(g, ratio=ratio)
    flat_modes = plan_modes(tasks, ratio)
    assert result.stats.accurate == sum(
        1 for m in flat_modes if m.value == "accurate"
    )
