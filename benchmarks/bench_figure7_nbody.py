"""Figure 7 (N-Body panel): relative error + energy vs ratio."""

import pytest

from repro.experiments import figure7_nbody
from repro.experiments.sweep import format_sweep


def test_figure7_nbody(benchmark):
    sweep = benchmark.pedantic(
        figure7_nbody, kwargs={"side": 7, "steps": 2}, rounds=1, iterations=1
    )

    sig_error = [p.quality for p in sweep.series("significance")]
    assert sig_error == sorted(sig_error, reverse=True)  # error shrinks
    assert sig_error[-1] == pytest.approx(0.0, abs=1e-12)  # exact at ratio 1

    # The paper's headline N-Body result: the fully approximate
    # significance run is *far* more accurate than perforation, because
    # dropped work is distance-selected rather than index-selected.
    assert sweep.quality_at(0.0) < 1e-3
    for ratio in (0.0, 0.2, 0.5):
        assert sweep.quality_at(ratio, "perforation") > sweep.quality_at(ratio)

    # And the energy saving at full approximation is large (paper ~91%).
    assert sweep.energy_reduction > 0.5

    benchmark.extra_info["energy_reduction"] = round(sweep.energy_reduction, 3)
    benchmark.extra_info["table"] = format_sweep(sweep)
