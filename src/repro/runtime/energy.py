"""Energy accounting for approximate executions.

The paper measures Joules with RAPL on a 14-core Xeon E5-2695 v3.  That
hardware path is not available here, so (per DESIGN.md §4) we model it.
Both models preserve the property the evaluation depends on: energy is a
monotone function of the work actually executed, plus a per-task runtime
overhead (which is why loop perforation — no task runtime — can undercut
the task-based version on energy, as the paper observes for Sobel and
Fisheye) and a static/idle component.

* :class:`AnalyticEnergyModel` — deterministic: tasks declare abstract
  work; ``E = e_op·Σwork + e_task·#tasks + P_static·(Σwork/throughput)``.
  Used by the benchmark harness so figures are reproducible run-to-run.
* :class:`TimingEnergyModel` — empirical: integrates measured wall time,
  ``E = P_active·Σt_task + P_static·t_total``.

Default constants are calibrated loosely against the paper's platform
(~100 W package power, a few nJ per scalar operation at ~1 GFLOP/s/core
effective Python-kernel throughput); see EXPERIMENTS.md for the resulting
absolute scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from .task import TaskResult

__all__ = [
    "EnergyModel",
    "AnalyticEnergyModel",
    "TimingEnergyModel",
    "EnergyBreakdown",
    "perforation_energy",
]


@dataclass
class EnergyBreakdown:
    """Energy of one group execution, split by source (Joules)."""

    dynamic: float = 0.0
    overhead: float = 0.0
    static: float = 0.0

    @property
    def total(self) -> float:
        """Total energy in Joules."""
        return self.dynamic + self.overhead + self.static

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.dynamic + other.dynamic,
            self.overhead + other.overhead,
            self.static + other.static,
        )


class EnergyModel(Protocol):
    """Anything that can convert a batch of task results into Joules."""

    def measure(self, results: Sequence[TaskResult]) -> EnergyBreakdown:
        """Energy consumed by the given executed tasks."""
        ...  # pragma: no cover - protocol


@dataclass
class AnalyticEnergyModel:
    """Deterministic work-based energy model (benchmark default).

    Attributes:
        energy_per_op: dynamic Joules per abstract operation.
        task_overhead: Joules charged per *submitted* task (scheduling,
            dependence tracking — paid even for dropped tasks, which is
            what makes the task runtime costlier than perforation at equal
            work).
        static_power: Watts of package idle power.
        throughput: abstract operations per second used to convert work
            into modelled time for the static component.
    """

    energy_per_op: float = 2e-9
    task_overhead: float = 2e-6
    static_power: float = 25.0
    throughput: float = 1e9

    def measure(self, results: Sequence[TaskResult]) -> EnergyBreakdown:
        """Model energy from declared work; ignores wall time."""
        executed_work = sum(
            r.task.executed_work(r.mode) for r in results
        )
        dynamic = self.energy_per_op * executed_work
        overhead = self.task_overhead * len(results)
        static = self.static_power * (executed_work / self.throughput)
        return EnergyBreakdown(dynamic=dynamic, overhead=overhead, static=static)


@dataclass
class TimingEnergyModel:
    """Wall-clock-based energy model (for live measurements).

    ``E = P_active · Σ task_time + P_static · Σ task_time`` — with the
    sequential executor total busy time equals elapsed time, so the two
    terms fold into one effective power figure per active second.
    """

    active_power: float = 75.0
    static_power: float = 25.0

    def measure(self, results: Sequence[TaskResult]) -> EnergyBreakdown:
        """Convert measured per-task seconds into Joules."""
        busy = sum(r.elapsed_seconds for r in results)
        return EnergyBreakdown(
            dynamic=self.active_power * busy,
            overhead=0.0,
            static=self.static_power * busy,
        )


def perforation_energy(
    model: AnalyticEnergyModel,
    executed_work: float,
    *,
    loop_iterations: int = 0,
) -> EnergyBreakdown:
    """Energy of a perforated (non-task) execution under the same model.

    Perforated loops pay no task overhead — only dynamic + static energy
    for the work they actually execute — mirroring the paper's observation
    that perforation can be more energy-efficient at equal accurate work.
    ``loop_iterations`` is accepted for symmetry but charged nothing.
    """
    dynamic = model.energy_per_op * executed_work
    static = model.static_power * (executed_work / model.throughput)
    return EnergyBreakdown(dynamic=dynamic, overhead=0.0, static=static)
