"""Tests for the DynDFG graph structure."""

import pytest

from repro.ad import ADouble, Tape
from repro.scorpio import DynDFG
from repro.scorpio.dyndfg import DFGNode


def make_node(nid, parents=(), op="op", label=None, sig=None):
    return DFGNode(
        id=nid,
        op=op,
        label=label,
        value=1.0,
        adjoint=None,
        significance=sig,
        parents=tuple(parents),
    )


def diamond():
    # 0 -> 1, 0 -> 2, (1,2) -> 3 (output)
    return DynDFG(
        [
            make_node(0, op="input"),
            make_node(1, (0,)),
            make_node(2, (0,)),
            make_node(3, (1, 2)),
        ],
        outputs=[3],
    )


class TestLevels:
    def test_output_level_zero(self):
        g = diamond()
        assert g[3].level == 0

    def test_bfs_levels(self):
        g = diamond()
        assert g[1].level == 1 and g[2].level == 1
        assert g[0].level == 2

    def test_height(self):
        assert diamond().height == 3

    def test_level_accessor(self):
        g = diamond()
        assert [n.id for n in g.level(1)] == [1, 2]

    def test_levels_mapping(self):
        levels = diamond().levels()
        assert sorted(levels) == [0, 1, 2]

    def test_shortest_path_level(self):
        # 0 -> 1 -> 3 and 0 -> 3 directly: level(0) must be 1 (shortest).
        g = DynDFG(
            [
                make_node(0, op="input"),
                make_node(1, (0,)),
                make_node(3, (1, 0)),
            ],
            outputs=[3],
        )
        assert g[0].level == 1

    def test_unreachable_node_has_no_level(self):
        g = DynDFG(
            [make_node(0, op="input"), make_node(1, (0,)), make_node(2, (0,))],
            outputs=[1],
        )
        assert g[2].level is None


class TestStructure:
    def test_missing_output_rejected(self):
        with pytest.raises(ValueError):
            DynDFG([make_node(0)], outputs=[5])

    def test_children_map(self):
        g = diamond()
        children = g.children_map()
        assert sorted(children[0]) == [1, 2]
        assert children[3] == []

    def test_inputs(self):
        assert [n.id for n in diamond().inputs()] == [0]

    def test_output_nodes(self):
        assert [n.id for n in diamond().output_nodes()] == [3]

    def test_labelled(self):
        g = DynDFG(
            [make_node(0, label="x"), make_node(1, (0,), label="x")],
            outputs=[1],
        )
        assert len(g.labelled("x")) == 2

    def test_contains_len_iter(self):
        g = diamond()
        assert 2 in g and 9 not in g
        assert len(g) == 4
        assert [n.id for n in g] == [0, 1, 2, 3]


class TestRemoveAbove:
    def test_truncation(self):
        g = diamond().remove_above(1)
        assert set(g.nodes) == {1, 2, 3}

    def test_parent_pruning(self):
        g = diamond().remove_above(1)
        assert g[1].parents == ()

    def test_original_untouched(self):
        g = diamond()
        g.remove_above(0)
        assert len(g) == 4


class TestFromTapeAndExport:
    def test_from_tape(self):
        with Tape() as tape:
            x = ADouble.input(1.0, label="x", tape=tape)
            y = x * 2.0 + 1.0
            tape.adjoint({y.node.index: 1.0})
        g = DynDFG.from_tape(tape, [y.node.index], {0: 0.5})
        assert g[0].significance == 0.5
        assert g[y.node.index].level == 0
        assert g[0].is_input

    def test_copy_is_independent(self):
        g = diamond()
        clone = g.copy()
        clone.nodes[0].label = "mutated"
        assert g[0].label is None

    def test_to_dot_mentions_all_nodes(self):
        dot = diamond().to_dot("T")
        for nid in range(4):
            assert f"n{nid}" in dot
        assert dot.startswith('digraph "T"')

    def test_display_name(self):
        assert make_node(3, label="foo").display_name == "foo"
        assert make_node(3, op="mul").display_name == "mul#3"
