"""Comparing significance analyses — regression testing for approximation.

When the analysed kernel (or its input ranges) changes, the significance
structure may shift — and with it the validity of the task partition and
the approximation choices built on the old analysis.  This module diffs
two :class:`~repro.scorpio.report.SignificanceReport`s:

* which labels appeared / disappeared;
* per-label significance drift (normalised, so overall scaling is
  factored out);
* whether the *ranking* changed (the property the runtime depends on);
* whether the partition level moved.

Intended use: persist a baseline with
:func:`repro.scorpio.serialize.report_to_json` in CI, re-run the analysis
on every change, and fail the build when ``ranking_changed`` — exactly
the discipline the paper's workflow implies but leaves manual.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .report import SignificanceReport
from .significance import normalise

__all__ = ["ReportDiff", "compare_reports"]


@dataclass
class ReportDiff:
    """Structured difference between two analyses."""

    added_labels: list[str] = field(default_factory=list)
    removed_labels: list[str] = field(default_factory=list)
    drift: dict[str, float] = field(default_factory=dict)  # new - old
    old_ranking: list[str] = field(default_factory=list)
    new_ranking: list[str] = field(default_factory=list)
    old_partition_level: int | None = None
    new_partition_level: int | None = None

    @property
    def ranking_changed(self) -> bool:
        """True when the significance ordering of common labels moved."""
        common = set(self.old_ranking) & set(self.new_ranking)
        old = [label for label in self.old_ranking if label in common]
        new = [label for label in self.new_ranking if label in common]
        return old != new

    @property
    def partition_moved(self) -> bool:
        """True when Algorithm 1 found its variance at a different level."""
        return self.old_partition_level != self.new_partition_level

    def max_drift(self) -> float:
        """Largest absolute normalised-significance change."""
        return max((abs(v) for v in self.drift.values()), default=0.0)

    def to_text(self) -> str:
        """Human-readable summary."""
        lines = ["significance report diff"]
        if self.added_labels:
            lines.append(f"  added:   {', '.join(self.added_labels)}")
        if self.removed_labels:
            lines.append(f"  removed: {', '.join(self.removed_labels)}")
        lines.append(
            "  ranking: "
            + ("CHANGED" if self.ranking_changed else "unchanged")
        )
        lines.append(
            "  partition level: "
            f"{self.old_partition_level} -> {self.new_partition_level}"
            + ("  (moved)" if self.partition_moved else "")
        )
        for label, delta in sorted(
            self.drift.items(), key=lambda kv: -abs(kv[1])
        ):
            lines.append(f"  {label}: {delta:+.4f}")
        return "\n".join(lines)


def compare_reports(
    old: SignificanceReport, new: SignificanceReport
) -> ReportDiff:
    """Diff two analyses (normalised significances, rankings, partition)."""
    old_sigs = normalise(old.labelled_significances())
    new_sigs = normalise(new.labelled_significances())
    old_labels = set(old_sigs)
    new_labels = set(new_sigs)

    drift = {
        label: new_sigs[label] - old_sigs[label]
        for label in sorted(old_labels & new_labels)
    }
    return ReportDiff(
        added_labels=sorted(new_labels - old_labels),
        removed_labels=sorted(old_labels - new_labels),
        drift=drift,
        old_ranking=[label for label, _ in old.ranking()],
        new_ranking=[label for label, _ in new.ranking()],
        old_partition_level=old.partition_level,
        new_partition_level=new.partition_level,
    )
