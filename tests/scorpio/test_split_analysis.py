"""Tests for significance analysis with automatic interval splitting."""

import pytest

from repro.intervals import AmbiguousComparisonError, Interval
from repro.scorpio import analyse_with_splitting


def branchy_abs_times(x, y):
    """|x| * y with an explicit branch (ambiguous when x spans 0)."""
    if x >= 0.0:
        return x * y
    return (-x) * y


def branchless(x, y):
    return x * y + y


class TestAnalyseWithSplitting:
    def test_branchless_single_box(self):
        study = analyse_with_splitting(
            branchless, [Interval(0, 1), Interval(0, 1)], names=["x", "y"]
        )
        assert len(study.boxes) == 1
        assert not study.skipped

    def test_branchy_covers_domain(self):
        study = analyse_with_splitting(
            branchy_abs_times,
            [Interval(-1.0, 2.0), Interval(1.0, 1.5)],
            names=["x", "y"],
            point_tolerance=1e-2,
        )
        assert len(study.boxes) > 1
        area = sum(
            b[0].width * b[1].width
            for b in list(study.boxes) + list(study.skipped)
        )
        assert area == pytest.approx(3.0 * 0.5, rel=1e-9)

    def test_no_box_straddles_the_branch(self):
        study = analyse_with_splitting(
            branchy_abs_times,
            [Interval(-1.0, 2.0), Interval(1.0, 1.5)],
            names=["x", "y"],
            point_tolerance=1e-2,
        )
        for box in study.boxes:
            assert not (box[0].lo < -1e-9 < box[0].hi - 1e-9)

    def test_boundary_slivers_skipped_not_fatal(self):
        study = analyse_with_splitting(
            branchy_abs_times,
            [Interval(-1.0, 1.0), Interval(1.0, 1.1)],
            names=["x", "y"],
            point_tolerance=1e-2,
        )
        assert study.skipped  # the x ~ 0 boundary region

    def test_depth_exhaustion_raises(self):
        with pytest.raises(AmbiguousComparisonError):
            analyse_with_splitting(
                branchy_abs_times,
                [Interval(-1.0, 2.0), Interval(1.0, 1.5)],
                max_depth=1,
                point_tolerance=1e-12,
            )

    def test_aggregate_significances_sane(self):
        study = analyse_with_splitting(
            branchy_abs_times,
            [Interval(-1.0, 2.0), Interval(1.0, 1.5)],
            names=["x", "y"],
            point_tolerance=1e-2,
        )
        agg = study.aggregate()
        # Somewhere in the domain x matters a lot (near |x| = 2).
        assert agg["x"]["max"] > 1.0
        assert agg["x"]["min"] >= 0.0
