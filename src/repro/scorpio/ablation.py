"""Ablation variants of the significance definition (DESIGN.md §6).

Eq. 11 defines ``S = w([u] · ∇[u][y])`` — the width of the worst-case
interval product.  This module provides the natural alternatives so the
design choice can be benchmarked:

* ``width_product`` — Eq. 11 (the paper's definition);
* ``first_order``   — ``w([u]) · mag(∇[u][y])``: first-order Taylor
  estimate of the output movement (no midpoint-magnitude term);
* ``value_width``   — ``w([u])`` only (pure interval analysis, question
  (a) of Section 2.1 without question (b));
* ``derivative_mag`` — ``mag(∇[u][y])`` only (pure adjoint sensitivity).

On the Maclaurin example, ``value_width`` cannot distinguish terms from
each other once their ranges coincide, and ``derivative_mag`` scores all
terms identically (they are simply summed); only the combined definitions
produce the Figure 3 ranking — which is exactly the paper's argument for
combining IA with AD.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.intervals import Interval

from .significance import significance_value

__all__ = [
    "SIGNIFICANCE_VARIANTS",
    "width_product",
    "first_order",
    "value_width",
    "derivative_mag",
    "score_tape",
]


def _as_interval(value: Any) -> Interval:
    return value if isinstance(value, Interval) else Interval(float(value))


def width_product(value: Any, adjoint: Any) -> float:
    """Eq. 11 — the paper's definition."""
    return significance_value(value, adjoint)


def first_order(value: Any, adjoint: Any) -> float:
    """First-order estimate: value width times derivative magnitude."""
    if adjoint is None:
        return 0.0
    return _as_interval(value).width * _as_interval(adjoint).mag


def value_width(value: Any, adjoint: Any) -> float:
    """Pure interval analysis: ignore the derivative entirely."""
    return _as_interval(value).width


def derivative_mag(value: Any, adjoint: Any) -> float:
    """Pure adjoint sensitivity: ignore the value range entirely."""
    if adjoint is None:
        return 0.0
    return _as_interval(adjoint).mag


SIGNIFICANCE_VARIANTS: dict[str, Callable[[Any, Any], float]] = {
    "width_product": width_product,
    "first_order": first_order,
    "value_width": value_width,
    "derivative_mag": derivative_mag,
}


def score_tape(tape, variant: str = "width_product") -> dict[int, float]:
    """Score every node of an adjoint-swept tape with a variant."""
    try:
        scorer = SIGNIFICANCE_VARIANTS[variant]
    except KeyError:
        raise KeyError(
            f"unknown significance variant {variant!r}; "
            f"choose from {sorted(SIGNIFICANCE_VARIANTS)}"
        ) from None
    return {node.index: scorer(node.value, node.adjoint) for node in tape}
