"""Significance analysis of the Sobel filter (Section 4.1.1).

For sampled pixels of a representative image, register the 3x3 input
window with ±half-gray-level intervals (quantisation uncertainty), tag
the six block contributions (A/B/C per direction) as intermediates, and
analyse against the output pixel.

The paper's finding, which this module reproduces: block **A** (the ±2
coefficients) is twice as significant as blocks **B** and **C**, at every
sampled pixel, while the combine stage shows little variance across
pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.intervals import Interval
from repro.scorpio import Analysis, CachedTrace, TraceCache, replay_enabled

from .sequential import combine_parts_pixel, sobel_parts_pixel

__all__ = [
    "SobelAnalysis",
    "analyse_sobel_pixel",
    "analyse_sobel_windows_vec",
    "analyse_sobel_map",
    "analyse_sobel_scan_map",
    "analyse_sobel",
]


@dataclass
class SobelAnalysis:
    """Aggregated block significances over the sampled pixels."""

    block_significance: dict[str, float]  # mean over samples, per block
    per_pixel: list[dict[str, float]]  # raw per-sample block significances
    samples: int

    @property
    def a_to_b_ratio(self) -> float:
        """S(A) / S(B) — the paper reports 2.0."""
        return self.block_significance["A"] / self.block_significance["B"]

    @property
    def a_to_c_ratio(self) -> float:
        """S(A) / S(C)."""
        return self.block_significance["A"] / self.block_significance["C"]


def _record_sobel_pixel(ivs, delta: float = 1e-6) -> Analysis:
    """Record one Sobel pixel over nine window intervals (row-major)."""
    an = Analysis(delta=delta)
    with an:
        it = iter(ivs)
        taped = [
            [an.input(next(it), name=f"p{dy}{dx}") for dx in range(3)]
            for dy in range(3)
        ]
        parts = sobel_parts_pixel(taped)
        for key, value in parts.items():
            an.intermediate(value, key)
        out = combine_parts_pixel(parts, smooth=True)
        an.output(out, name="pixel")
    return an


def analyse_sobel_pixel(
    window: np.ndarray,
    pixel_uncertainty: float = 0.5,
    delta: float = 1e-6,
    compiled: bool = False,
    cache: TraceCache | None = None,
) -> dict[str, float]:
    """Block significances for one 3x3 window.

    Returns ``{"A": ..., "B": ..., "C": ...}`` where each block's
    significance is the sum over its two direction contributions.  With a
    ``cache``, replays the shared pixel trace on this window's intervals —
    bit-identical to recording it.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.shape != (3, 3):
        raise ValueError(f"expected 3x3 window, got {window.shape}")

    ivs = [
        Interval.centered(float(window[dy][dx]), pixel_uncertainty)
        for dy in range(3)
        for dx in range(3)
    ]
    if cache is not None:
        report = cache.analyse(
            ("sobel_pixel", delta),
            lambda ivs: _record_sobel_pixel(ivs, delta),
            ivs,
        )
    else:
        report = _record_sobel_pixel(ivs, delta).analyse(compiled=compiled)
    sigs = report.labelled_significances()
    return {
        "A": sigs["a_x"] + sigs["a_y"],
        "B": sigs["b_x"] + sigs["b_y"],
        "C": sigs["c_x"] + sigs["c_y"],
    }


def analyse_sobel_windows_vec(
    windows: np.ndarray, pixel_uncertainty: float = 0.5
) -> list[dict[str, float]]:
    """Block significances for a stack of 3x3 windows — one batched tape.

    ``windows`` has shape ``(n, 3, 3)``; each window becomes one lane, so
    a single reverse sweep replaces ``n`` scalar analyses.
    """
    from repro.vec import IntervalArray, VAnalysis

    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 3 or windows.shape[1:] != (3, 3):
        raise ValueError(f"expected (n, 3, 3) windows, got {windows.shape}")
    va = VAnalysis(lane_shape=(windows.shape[0],))
    with va:
        taped = [
            [
                va.input(
                    IntervalArray.centered(
                        windows[:, dy, dx], pixel_uncertainty
                    ),
                    name=f"p{dy}{dx}",
                )
                for dx in range(3)
            ]
            for dy in range(3)
        ]
        parts = sobel_parts_pixel(taped)
        for key, value in parts.items():
            va.intermediate(value, key)
        va.output(combine_parts_pixel(parts, smooth=True), name="pixel")
    sigs = va.analyse().labelled_significances()
    return [
        {
            "A": float(sigs["a_x"][i] + sigs["a_y"][i]),
            "B": float(sigs["b_x"][i] + sigs["b_y"][i]),
            "C": float(sigs["c_x"][i] + sigs["c_y"][i]),
        }
        for i in range(windows.shape[0])
    ]


def _record_sobel_map(image: np.ndarray, pixel_uncertainty: float):
    """Record + sweep the whole-image batched Sobel tape (one lane per
    pixel, edge-padded windows); returns the ``VecSignificanceReport``."""
    from repro.vec import IntervalArray, VAnalysis

    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2 or min(image.shape) < 3:
        raise ValueError("image too small for a 3x3 filter")
    padded = np.pad(image, 1, mode="edge")
    h, w = image.shape
    va = VAnalysis(lane_shape=(h, w))
    with va:
        taped = [
            [
                va.input(
                    IntervalArray.centered(
                        padded[dy : dy + h, dx : dx + w], pixel_uncertainty
                    ),
                    name=f"p{dy}{dx}",
                )
                for dx in range(3)
            ]
            for dy in range(3)
        ]
        parts = sobel_parts_pixel(taped)
        for key, value in parts.items():
            va.intermediate(value, key)
        va.output(combine_parts_pixel(parts, smooth=True), name="pixel")
    return va.analyse()


def _sobel_lane_bounds(
    image: np.ndarray, pixel_uncertainty: float, delta: float = 1e-6
):
    """Record the scalar pixel trace once; build every pixel's lane bounds.

    Returns ``(trace, lanes_lo, lanes_hi)`` — a :class:`CachedTrace` of
    the 3x3 Sobel pixel and the ``(9, H*W)`` input bounds of all
    edge-padded windows, lanes ordered row-major so a ``(start, stop)``
    lane chunk aligned to the image width is a whole band of rows.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2 or min(image.shape) < 3:
        raise ValueError("image too small for a 3x3 filter")
    padded = np.pad(image, 1, mode="edge")
    h, w = image.shape
    win0 = padded[0:3, 0:3]
    ivs = [
        Interval.centered(float(win0[dy, dx]), pixel_uncertainty)
        for dy in range(3)
        for dx in range(3)
    ]
    trace = CachedTrace(_record_sobel_pixel(ivs, delta), simplify=True)
    lanes_lo = np.empty((9, h * w), dtype=np.float64)
    lanes_hi = np.empty((9, h * w), dtype=np.float64)
    row = 0
    for dy in range(3):
        for dx in range(3):
            centre = padded[dy : dy + h, dx : dx + w].reshape(-1)
            lanes_lo[row] = centre - pixel_uncertainty
            lanes_hi[row] = centre + pixel_uncertainty
            row += 1
    return trace, lanes_lo, lanes_hi


def _replay_sobel_lanes(
    image: np.ndarray, pixel_uncertainty: float, delta: float = 1e-6
):
    """Record the scalar pixel trace once, replay every pixel as a lane.

    Returns ``(trace, lanes)`` — a :class:`CachedTrace` of the 3x3 Sobel
    pixel and the :class:`repro.ad.ReplayLanes` of its batched forward
    replay over all H×W edge-padded windows.
    """
    trace, lanes_lo, lanes_hi = _sobel_lane_bounds(
        image, pixel_uncertainty, delta
    )
    return trace, trace.forward_lanes(lanes_lo, lanes_hi)


def _lane_sig(
    trace: CachedTrace,
    lanes_lo: np.ndarray,
    lanes_hi: np.ndarray,
    *,
    executor=None,
    workers: int | None = None,
    align: int = 1,
) -> np.ndarray:
    """Eq. 11 matrix for lane bounds, sequential or process-parallel.

    ``executor="process"`` fans row-aligned lane chunks out over worker
    processes against a shared frozen tape (:mod:`repro.mp`); both paths
    are bitwise identical (pinned by ``tests/mp``).
    """
    if executor is not None:
        from repro.mp import parallel_lane_significances, process_requested
    if executor is not None and process_requested(executor):
        return parallel_lane_significances(
            trace,
            lanes_lo,
            lanes_hi,
            workers=workers,
            align=align,
            executor=None if isinstance(executor, str) else executor,
        )
    return trace.lane_significances(trace.forward_lanes(lanes_lo, lanes_hi))


def _block_maps_from_sig(
    trace: CachedTrace, sig: np.ndarray, shape: tuple[int, int]
) -> dict[str, np.ndarray]:
    def block(label: str) -> np.ndarray:
        return sig[trace.label_index(label)].reshape(shape)

    return {
        "A": block("a_x") + block("a_y"),
        "B": block("b_x") + block("b_y"),
        "C": block("c_x") + block("c_y"),
    }


def analyse_sobel_map(
    image: np.ndarray,
    pixel_uncertainty: float = 0.5,
    replay: bool | None = None,
    executor=None,
    workers: int | None = None,
) -> dict[str, np.ndarray]:
    """Per-pixel block significance maps over the *whole* image.

    Every pixel of ``image`` is one lane of a single batched pass, so the
    full H×W significance map of each block costs one recording and one
    reverse sweep — the scalar engine would need one tape per pixel.
    With ``replay`` (default: the module replay setting) the batched pass
    is a forward *replay* of a single recorded scalar-pixel trace instead
    of a batched re-recording; the replayed maps are bit-identical to
    running :func:`analyse_sobel_pixel` at every pixel (the batched
    re-recording agrees with the scalar analysis only to ~1e-9 relative).
    ``executor="process"`` splits the replay into whole-row lane chunks
    across ``workers`` processes (:mod:`repro.mp`) — same maps, bit for
    bit.  Returns ``{"A": map, "B": map, "C": map}`` with each map shaped
    like ``image``.
    """
    if replay_enabled(replay):
        image = np.asarray(image, dtype=np.float64)
        trace, lanes_lo, lanes_hi = _sobel_lane_bounds(
            image, pixel_uncertainty
        )
        sig = _lane_sig(
            trace,
            lanes_lo,
            lanes_hi,
            executor=executor,
            workers=workers,
            align=image.shape[1],
        )
        return _block_maps_from_sig(trace, sig, image.shape)
    sigs = _record_sobel_map(image, pixel_uncertainty).labelled_significances()
    return {
        "A": sigs["a_x"] + sigs["a_y"],
        "B": sigs["b_x"] + sigs["b_y"],
        "C": sigs["c_x"] + sigs["c_y"],
    }


def analyse_sobel_scan_map(
    image: np.ndarray,
    pixel_uncertainty: float = 0.5,
    delta: float = 1e-6,
    replay: bool | None = None,
    executor=None,
    workers: int | None = None,
) -> dict[str, "np.ndarray | Any"]:
    """Full per-pixel analysis of the whole image in one batched pass.

    Combines the block significance maps of :func:`analyse_sobel_map`
    with a lane-parallel Algorithm 1 variance scan
    (:func:`repro.vec.lane_scan_map`): for every pixel, the first DynDFG
    level whose significance variance exceeds ``delta``.  The scalar
    equivalent is one full :func:`analyse_sobel_pixel` run per pixel.
    With ``replay`` (default: the module replay setting), maps and scan
    both come from a forward replay of one recorded scalar-pixel trace —
    bit-identical to the per-pixel scalar analysis; ``executor="process"``
    computes the significance matrix in whole-row chunks across
    ``workers`` processes with identical bits (the scan itself stays in
    the parent — it is one cheap pass over the matrix).

    Returns ``{"A": map, "B": map, "C": map, "scan": LaneScanMap}``.
    """
    if replay_enabled(replay):
        image = np.asarray(image, dtype=np.float64)
        trace, lanes_lo, lanes_hi = _sobel_lane_bounds(
            image, pixel_uncertainty, delta
        )
        sig = _lane_sig(
            trace,
            lanes_lo,
            lanes_hi,
            executor=executor,
            workers=workers,
            align=image.shape[1],
        )
        result: dict[str, Any] = _block_maps_from_sig(
            trace, sig, image.shape
        )
        result["scan"] = trace.lane_scan_map(sig, image.shape, delta=delta)
        return result

    from repro.vec import lane_scan_map

    vreport = _record_sobel_map(image, pixel_uncertainty)
    sigs = vreport.labelled_significances()
    result = {
        "A": sigs["a_x"] + sigs["a_y"],
        "B": sigs["b_x"] + sigs["b_y"],
        "C": sigs["c_x"] + sigs["c_y"],
    }
    result["scan"] = lane_scan_map(vreport, delta=delta)
    return result


def analyse_sobel(
    image: np.ndarray,
    samples: int = 16,
    pixel_uncertainty: float = 0.5,
    seed: int = 3,
    vec: bool = False,
    compiled: bool = False,
    replay: bool | None = None,
) -> SobelAnalysis:
    """Profile-driven analysis over sampled interior pixels of ``image``.

    With ``vec=True`` the sampled windows are analysed as lanes of one
    batched tape (same sampled pixels, one reverse sweep total).  In the
    scalar path, ``replay`` (default: the module replay setting) records
    the pixel trace on the first sampled window and replays it on the
    rest.
    """
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape
    if h < 3 or w < 3:
        raise ValueError("image too small for a 3x3 filter")
    rng = np.random.default_rng(seed)
    positions = []
    for _ in range(samples):
        y = int(rng.integers(1, h - 1))
        x = int(rng.integers(1, w - 1))
        positions.append((y, x))
    if vec:
        windows = np.stack(
            [image[y - 1 : y + 2, x - 1 : x + 2] for y, x in positions]
        )
        per_pixel = analyse_sobel_windows_vec(
            windows, pixel_uncertainty=pixel_uncertainty
        )
    else:
        cache = TraceCache() if replay_enabled(replay) else None
        per_pixel = [
            analyse_sobel_pixel(
                image[y - 1 : y + 2, x - 1 : x + 2],
                pixel_uncertainty=pixel_uncertainty,
                compiled=compiled,
                cache=cache,
            )
            for y, x in positions
        ]
    mean = {
        key: float(np.mean([p[key] for p in per_pixel]))
        for key in ("A", "B", "C")
    }
    return SobelAnalysis(
        block_significance=mean, per_pixel=per_pixel, samples=samples
    )
