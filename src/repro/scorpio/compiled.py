"""Array-backed ANALYSE pipeline over a :class:`~repro.ad.compiled.CompiledTape`.

The object pipeline (``Analysis.analyse``) walks dict-of-object graphs:
Eq. 11 per node, Algorithm 1 step S4 (simplify) on ``DFGNode`` copies, and
step S5 (BFS level / variance scan) via per-level sorts.  This module runs
the same algorithm on the compiled tape's flat arrays:

* Eq. 11 significance ``w([uj]·∇[uj][y])`` as one vectorized expression
  over the value/adjoint lo-hi arrays (:func:`eq11_from_sweep` /
  :func:`eq11_vector`);
* S4 on plain opcode/parent lists (:func:`simplify_structure`) — the
  traversal order and absorption rules are copied from
  :func:`repro.scorpio.simplify.simplify` so the resulting structure is
  identical;
* S5 with an array BFS over the CSR edges (:func:`levels_from_parents`)
  and the exact sequential-float variance of
  :func:`repro.scorpio.variance.level_variance` (:func:`scan_levels`);
* a DynDFG/report adapter (:func:`analyse_compiled`) that materializes the
  same ``SignificanceReport`` objects the object pipeline produces —
  byte-identical through :func:`repro.scorpio.serialize.report_to_json`.

Every numeric step reproduces the object pipeline bit-for-bit (same
product orders, same rounding points, same Python-float accumulation in
the variance), so ``analyse(compiled=True)`` is a pure speedup, not an
approximation; the object path remains the oracle the tests compare
against.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Mapping, Sequence

import numpy as np

from repro.ad.compiled import CompiledTape, _csr_gather
from repro.ad.tape import Tape
from repro.intervals import Interval
from repro.intervals.rounding import rounding_enabled
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import span as _obs_span

from .dyndfg import DFGNode, DynDFG
from .report import SignificanceReport
from .simplify import AGGREGATE_OPS
from .variance import VarianceScan

__all__ = [
    "analyse_compiled",
    "analyse_compiled_tape",
    "analyse_replay_lanes",
    "TraceStructure",
    "eq11_from_sweep",
    "eq11_vector",
    "simplify_structure",
    "levels_from_parents",
    "levels_from_csr",
    "scan_levels",
]

_NEG_INF = -np.inf
_POS_INF = np.inf

_C_ANALYSES = _obs_metrics.counter("scorpio.analyses")
_C_SIMPLIFY_REMOVED = _obs_metrics.counter("scorpio.simplify_removed")
_C_SCANS = _obs_metrics.counter("scorpio.scans")
_C_SCAN_LEVELS = _obs_metrics.counter("scorpio.scan_levels_visited")


# ----------------------------------------------------------------------
# Eq. 11 on arrays
# ----------------------------------------------------------------------
def eq11_from_sweep(
    value_lo: np.ndarray,
    value_hi: np.ndarray,
    adj_lo: np.ndarray,
    adj_hi: np.ndarray,
    *,
    interval_mode: bool = True,
) -> np.ndarray:
    """``S_y(uj) = w([uj]·∇[uj][y])`` for every node, in one expression.

    Bit-identical to mapping
    :func:`repro.scorpio.significance.significance_value` over the nodes:
    same four endpoint products in the same order, ``0·inf → 0`` cleanup,
    fold-left min/max tie-breaking, and outward rounding honouring the
    global flag.  Arrays may carry any trailing lane axes.  For float
    tapes (``interval_mode=False``) this is the scalar fallback
    ``|uj · ∂y/∂uj|``.
    """
    if not interval_mode:
        return np.abs(value_lo * adj_lo)
    p1 = value_lo * adj_lo
    p2 = value_lo * adj_hi
    p3 = value_hi * adj_lo
    p4 = value_hi * adj_hi
    for p in (p1, p2, p3, p4):
        p[np.isnan(p)] = 0.0
    lo = np.where(p2 < p1, p2, p1)
    lo = np.where(p3 < lo, p3, lo)
    lo = np.where(p4 < lo, p4, lo)
    hi = np.where(p2 > p1, p2, p1)
    hi = np.where(p3 > hi, p3, hi)
    hi = np.where(p4 > hi, p4, hi)
    if rounding_enabled():
        lo = np.nextafter(lo, _NEG_INF)
        hi = np.nextafter(hi, _POS_INF)
    return hi - lo


def eq11_vector(
    value_lo: np.ndarray,
    value_hi: np.ndarray,
    adj_lo: np.ndarray,
    adj_hi: np.ndarray,
    *,
    interval_mode: bool = True,
    scratch: dict | None = None,
) -> np.ndarray:
    """Vector-mode Eq. 11: ``S_y(uj) = Σ_i S_{y_i}(uj)`` on ``(n, m)``
    adjoint component matrices — the array twin of
    :func:`repro.scorpio.significance.significance_map_vector` (same
    branch per node, same association order, no outward rounding).

    ``scratch`` may hold reusable work buffers (keyed by this function,
    reallocated on shape changes); callers analysing many replays of one
    tape pass the tape's pool to avoid re-faulting fresh pages per call.
    Only the returned sum is ever exposed, so reuse cannot alias results.
    """
    if not interval_mode:
        return np.sum(np.abs(value_lo[:, None] * adj_lo), axis=1)

    def buf(key: str) -> np.ndarray:
        if scratch is None:
            return np.empty(adj_lo.shape, dtype=np.float64)
        a = scratch.get(key)
        if a is None or a.shape != adj_lo.shape:
            a = np.empty(adj_lo.shape, dtype=np.float64)
            scratch[key] = a
        return a

    point = value_lo == value_hi
    any_point = point.any()
    # Full-array endpoint products; point rows are recomputed below with
    # their own branch formula (cheaper than boolean-gathering four
    # (n, m) arrays when point rows are a minority, and elementwise ops
    # make the non-point rows bit-identical either way).
    vl = value_lo[:, None]
    vh = value_hi[:, None]
    p1 = np.multiply(vl, adj_lo, out=buf("eq11_p1"))
    p2 = np.multiply(vl, adj_hi, out=buf("eq11_p2"))
    p3 = np.multiply(vh, adj_lo, out=buf("eq11_p3"))
    p4 = np.multiply(vh, adj_hi, out=buf("eq11_p4"))
    pmin = np.minimum(p1, p2, out=buf("eq11_pmin"))
    t = np.minimum(p3, p4, out=buf("eq11_t"))
    np.minimum(pmin, t, out=pmin)
    pmax = np.maximum(p1, p2, out=p2)
    np.maximum(p3, p4, out=p4)
    np.maximum(pmax, p4, out=pmax)
    np.subtract(pmax, pmin, out=pmax)
    sig = np.sum(pmax, axis=1)
    if any_point:
        sig[point] = np.abs(value_lo[point]) * np.sum(
            adj_hi[point] - adj_lo[point], axis=1
        )
    return sig


# ----------------------------------------------------------------------
# Algorithm 1 S4 on plain structure
# ----------------------------------------------------------------------
def simplify_structure(
    ops: Sequence[str],
    parents: Sequence[tuple[int, ...]],
    outputs: Sequence[int],
) -> tuple[list[int], dict[int, tuple[int, ...]], dict[int, tuple[int, ...]]]:
    """Step S4 on opcode/parent lists; structure-identical to
    :func:`repro.scorpio.simplify.simplify`.

    Returns ``(survivor ids ascending, id -> parents, id -> merged)``.
    Only the graph *structure* matters here, so the batched bridge can run
    it once and reuse it for every lane.
    """
    n = len(ops)
    flat = np.fromiter(chain.from_iterable(parents), dtype=np.int64)
    if flat.size:
        consumer_count = np.bincount(flat, minlength=n).tolist()
    else:
        consumer_count = [0] * n

    removed: set[int] = set()
    cur_parents: list[tuple[int, ...]] = list(parents)
    merged_all: list[tuple[int, ...]] = [()] * n

    # Descending id (reverse execution) order: the final node of each
    # aggregation chain absorbs the whole chain in one pass.
    for nid in range(n - 1, -1, -1):
        if nid in removed or ops[nid] not in AGGREGATE_OPS:
            continue
        merged = list(merged_all[nid])
        new_parents: list[int] = []
        frontier = list(cur_parents[nid])
        changed = False
        while frontier:
            pid = frontier.pop()
            if pid in removed:
                continue
            p_op = ops[pid]
            absorb_chain = (
                p_op in AGGREGATE_OPS and consumer_count[pid] == 1
            )
            absorb_const = p_op == "const" and consumer_count[pid] == 1
            if absorb_chain or absorb_const:
                removed.add(pid)
                merged.append(pid)
                merged.extend(merged_all[pid])
                frontier.extend(cur_parents[pid])
                changed = True
            else:
                new_parents.append(pid)
        if changed:
            cur_parents[nid] = tuple(sorted(set(new_parents)))
            merged_all[nid] = tuple(sorted(set(merged)))

    survivors = [i for i in range(n) if i not in removed]
    still_consumed: set[int] = set()
    for i in survivors:
        still_consumed.update(cur_parents[i])
    out_set = set(outputs)
    survivors = [
        i
        for i in survivors
        if not (
            ops[i] == "const" and i not in still_consumed and i not in out_set
        )
    ]
    surv_set = set(survivors)
    final_parents = {
        i: tuple(p for p in cur_parents[i] if p in surv_set)
        for i in survivors
    }
    final_merged = {i: merged_all[i] for i in survivors}
    return survivors, final_parents, final_merged


# ----------------------------------------------------------------------
# Algorithm 1 S5: BFS levels + variance scan
# ----------------------------------------------------------------------
def levels_from_parents(
    parents: Mapping[int, tuple[int, ...]],
    n: int,
    outputs: Sequence[int],
) -> dict[int, int]:
    """BFS distance-to-output levels over a parents map, frontier by
    frontier on CSR arrays.  Matches ``DynDFG._assign_levels`` (levels are
    shortest distances, so queue order is irrelevant); unreachable nodes
    are absent from the result (their level is ``None``)."""
    m = len(parents)
    ids = np.fromiter(parents.keys(), dtype=np.int64, count=m)
    lens = np.fromiter(map(len, parents.values()), dtype=np.int64, count=m)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    row_ptr[ids + 1] = lens
    np.cumsum(row_ptr, out=row_ptr)
    e = int(row_ptr[-1])
    if m and bool(np.all(ids[:-1] < ids[1:])):
        # Keys ascending (the common case: dicts built over ascending
        # survivor ids), so concatenating values in iteration order lands
        # each row exactly at its CSR offset.
        parent_idx = np.fromiter(
            chain.from_iterable(parents.values()), dtype=np.int64, count=e
        )
    else:
        parent_idx = np.empty(e, dtype=np.int64)
        for i, ps in parents.items():
            start = row_ptr[i]
            parent_idx[start : start + len(ps)] = ps
    return levels_from_csr(row_ptr, parent_idx, outputs)


def levels_from_csr(
    row_ptr: np.ndarray,
    parent_idx: np.ndarray,
    outputs: Sequence[int],
) -> dict[int, int]:
    """BFS levels straight off CSR edge arrays (e.g. a
    :class:`~repro.ad.compiled.CompiledTape`'s — no rebuild needed)."""
    n = len(row_ptr) - 1
    levels = np.full(n, -1, dtype=np.int64)
    frontier = np.unique(np.asarray(list(outputs), dtype=np.int64))
    levels[frontier] = 0
    fresh = np.zeros(n, dtype=bool)
    d = 0
    while frontier.size:
        ps = _csr_gather(row_ptr, parent_idx, frontier)
        if not ps.size:
            break
        # Mask-based dedup-and-filter: flatnonzero yields the sorted
        # unique unvisited parents without an O(e log e) np.unique.
        fresh[ps] = True
        fresh &= levels < 0
        ps = np.flatnonzero(fresh)
        fresh[ps] = False
        if not ps.size:
            break
        d += 1
        levels[ps] = d
        frontier = ps
    reached = np.flatnonzero(levels >= 0)
    return dict(zip(reached.tolist(), levels[reached].tolist()))


def group_levels(levels: Mapping[int, int]) -> dict[int, list[int]]:
    """Level -> ascending member ids, as the variance scan visits them.

    Pure structure — replay loops precompute it once per trace (see
    :meth:`TraceStructure.scan_members`) instead of re-sorting the level
    map on every scan.
    """
    members_by_level: dict[int, list[int]] = {}
    for nid in sorted(levels):
        members_by_level.setdefault(levels[nid], []).append(nid)
    return members_by_level


def scan_levels(
    levels: Mapping[int, int],
    significances: Mapping[int, float],
    delta: float,
) -> tuple[int | None, dict[int, float]]:
    """``findSgnfVariance`` on precomputed levels — exact Python-float
    arithmetic of :func:`repro.scorpio.variance.level_variance` (sequential
    sum over members in ascending id order, population variance)."""
    return scan_grouped(group_levels(levels), significances, delta)


def scan_grouped(
    members_by_level: Mapping[int, Sequence[int]],
    significances: Mapping[int, float],
    delta: float,
) -> tuple[int | None, dict[int, float]]:
    """:func:`scan_levels` on an already-grouped level map."""
    height = (max(members_by_level) + 1) if members_by_level else 0
    variances: dict[int, float] = {}
    for level in range(1, height):
        sigs = [significances[i] for i in members_by_level.get(level, ())]
        if len(sigs) < 2:
            var = 0.0
        else:
            mean = sum(sigs) / len(sigs)
            var = sum((s - mean) ** 2 for s in sigs) / len(sigs)
        variances[level] = var
        if var > delta:
            return level, variances
    return None, variances


# ----------------------------------------------------------------------
# Materialization (arrays -> DynDFG / SignificanceReport)
# ----------------------------------------------------------------------
class _LazyDynDFG(DynDFG):
    """A :class:`DynDFG` whose node objects are built on first access.

    The compiled pipeline keeps its results in arrays; most consumers only
    read a handful of labelled significances, so the ``DFGNode``
    dictionaries (one Python object per tape node, times three graphs) are
    materialized lazily.  Once built, the instance behaves exactly like an
    eagerly-constructed graph — serialization and comparison see identical
    objects.
    """

    def __init__(self, build, outputs: Sequence[int]):
        self._build = build
        self._materialized: dict[int, DFGNode] | None = None
        self.outputs = list(outputs)

    @property  # type: ignore[override]
    def nodes(self) -> dict[int, DFGNode]:
        materialized = self._materialized
        if materialized is None:
            materialized = self._build()
            self._materialized = materialized
        return materialized


class _CompiledReport(SignificanceReport):
    """Report flavour whose label views read the flat columns directly.

    Byte-identical to the object report (the overridden methods return
    the same dictionaries in the same order) but without materializing
    16k ``DFGNode`` objects to look up a handful of labels.
    """

    _labels: dict[int, str]
    _sig: list[float]
    _n: int

    def labelled_significances(self) -> dict[str, float]:
        out: dict[str, float] = {}
        outputs = self.output_ids
        for i, label in self._labels.items():
            if i in outputs:
                continue
            out[label] = out.get(label, 0.0) + self._sig[i]
        return out

    def input_significances(self) -> dict[str, float]:
        ids = set(self.input_ids)
        return {
            (self._labels.get(i) or f"x{i}"): self._sig[i]
            for i in sorted(ids)
        }

    def significance_of(self, label: str) -> float:
        hits = [i for i, lab in self._labels.items() if lab == label]
        if not hits:
            raise KeyError(f"no registered variable named {label!r}")
        if len(hits) > 1:
            raise KeyError(
                f"label {label!r} is ambiguous ({len(hits)} nodes); "
                "use labelled_significances()"
            )
        return self._sig[hits[0]] or 0.0


def build_graph(
    ids: Sequence[int],
    *,
    ops: Sequence[str],
    labels: Sequence[str | None],
    values: Sequence[Any],
    adjoints: Sequence[Any],
    significances: Sequence[float],
    parents: Mapping[int, tuple[int, ...]] | Sequence[tuple[int, ...]],
    merged: Mapping[int, tuple[int, ...]] | None,
    levels: Mapping[int, int],
    outputs: Sequence[int],
) -> DynDFG:
    """Materialize a :class:`DynDFG` from id-indexed columns, injecting
    the precomputed BFS levels instead of recomputing them."""
    nodes = [
        DFGNode(
            id=i,
            op=ops[i],
            label=labels[i],
            value=values[i],
            adjoint=adjoints[i],
            significance=significances[i],
            parents=parents[i],
            merged=merged[i] if merged is not None else (),
        )
        for i in ids
    ]
    return DynDFG(nodes, list(outputs), levels=dict(levels))


def _scan_and_assemble(
    *,
    lazy_graph,
    raw,
    simplified,
    surv,
    s_parents,
    s_merged,
    s_levels,
    sig_list,
    delta,
    input_ids,
    intermediate_ids,
    output_ids,
    labels,
    n,
    scan_members=None,
):
    """S5 + report assembly shared by :func:`analyse_compiled` and the
    batched bridge: variance-scan the simplified structure, truncate if a
    level is found, wrap everything in a :class:`_CompiledReport`.

    ``scan_members`` is the precomputed :func:`group_levels` of the
    surviving nodes (structural; replay loops reuse it across calls)."""
    if scan_members is None:
        scan_members = group_levels(
            {i: s_levels[i] for i in surv if i in s_levels}
        )
    _C_SCANS.inc()
    with _obs_span("scorpio.scan") as sp:
        found, variances = scan_grouped(scan_members, sig_list, delta)
        _C_SCAN_LEVELS.inc(len(variances))
        sp.set(levels=len(variances), found=found)
    if found is None:
        scan_graph = simplified
    else:
        keep = [
            i for i in surv if i in s_levels and s_levels[i] <= found + 1
        ]
        keep_set = set(keep)
        k_parents = {
            i: tuple(p for p in s_parents[i] if p in keep_set) for i in keep
        }
        # Truncation preserves BFS levels: every shortest path from a kept
        # node runs through strictly smaller levels, hence through kept
        # nodes only.
        scan_graph = lazy_graph(
            keep, k_parents, s_merged, {i: s_levels[i] for i in keep}
        )

    scan = VarianceScan(
        graph=scan_graph, found_level=found, delta=delta, variances=variances
    )
    report = _CompiledReport(
        raw_graph=raw,
        simplified_graph=simplified,
        scan=scan,
        input_ids=list(input_ids),
        intermediate_ids=list(intermediate_ids),
        output_ids=list(output_ids),
    )
    report._labels = labels
    report._sig = sig_list
    report._n = n
    return report


class TraceStructure:
    """Input-independent analysis structure of one compiled trace.

    Algorithm 1's S4 (simplify) and the BFS levels depend only on the
    graph *shape* — opcodes and parent edges — never on the interval
    values flowing through it.  A replayed trace keeps its shape, so the
    trace cache computes this once per recorded trace and passes it to
    every :func:`analyse_compiled_tape` call, leaving only the reverse
    sweep, Eq. 11 and the variance scan as per-replay work.
    """

    __slots__ = (
        "output_ids",
        "simplified",
        "ops",
        "raw_parents",
        "surv",
        "s_parents",
        "s_merged",
        "s_levels",
        "_row_ptr",
        "_parent_idx",
        "_raw_levels_memo",
        "_scan_members_memo",
    )

    def __init__(
        self,
        ct: CompiledTape,
        output_ids: Sequence[int],
        *,
        simplify: bool = True,
    ):
        output_ids = list(output_ids)
        n = ct.n
        ptr = ct.row_ptr.tolist()
        pidx = ct.parent_idx.tolist()
        self.output_ids = output_ids
        self.simplified = simplify
        self.ops = [ct.op_names[c] for c in ct.opcodes.tolist()]
        self.raw_parents = [
            tuple(pidx[ptr[j] : ptr[j + 1]]) for j in range(n)
        ]
        self._row_ptr = ct.row_ptr
        self._parent_idx = ct.parent_idx
        self._raw_levels_memo: list[dict[int, int]] = []
        self._scan_members_memo: list[dict[int, list[int]]] = []
        if simplify:
            with _obs_span("scorpio.simplify") as sp:
                self.surv, self.s_parents, self.s_merged = (
                    simplify_structure(
                        self.ops, self.raw_parents, output_ids
                    )
                )
                removed = n - len(self.surv)
                _C_SIMPLIFY_REMOVED.inc(removed)
                sp.set(nodes=n, removed=removed, backend="compiled")
            with _obs_span("scorpio.levels") as sp:
                self.s_levels = levels_from_parents(
                    self.s_parents, n, output_ids
                )
                sp.set(nodes=len(self.s_levels))
        else:
            self.surv = range(n)
            self.s_parents = self.raw_parents
            self.s_merged = None
            self.s_levels = self.raw_levels()

    def raw_levels(self) -> dict[int, int]:
        """BFS levels of the raw graph (lazy: only the raw-graph view
        needs them)."""
        if not self._raw_levels_memo:
            self._raw_levels_memo.append(
                levels_from_csr(self._row_ptr, self._parent_idx, self.output_ids)
            )
        return self._raw_levels_memo[0]

    def scan_members(self) -> dict[int, list[int]]:
        """Variance-scan grouping of the surviving nodes (lazy, memoized:
        structural, so every replay of this trace scans the same lists)."""
        if not self._scan_members_memo:
            self._scan_members_memo.append(
                group_levels(
                    {
                        i: self.s_levels[i]
                        for i in self.surv
                        if i in self.s_levels
                    }
                )
            )
        return self._scan_members_memo[0]


def analyse_compiled_tape(
    ct: CompiledTape,
    output_ids: Sequence[int],
    *,
    input_ids: Sequence[int] = (),
    intermediate_ids: Sequence[int] = (),
    delta: float = 1e-6,
    simplify: bool = True,
    structure: TraceStructure | None = None,
) -> SignificanceReport:
    """ANALYSE over a compiled tape's *current* arrays.

    Unlike :func:`analyse_compiled` this reads every node value, opcode
    and parent from the :class:`CompiledTape` columns rather than the
    source ``tape.nodes`` — which is what makes it valid after
    :meth:`CompiledTape.forward` replayed fresh inputs over the arrays
    (the object nodes then hold the *recorded* values, the arrays the
    *replayed* ones).  Pass a precomputed :class:`TraceStructure` to skip
    the per-call S4/BFS work when analysing many replays of one trace.

    Returns a :class:`SignificanceReport` byte-identical (through
    ``report_to_json``) to the object pipeline run on an equivalent
    recording.
    """
    _C_ANALYSES.inc()
    with _obs_span("scorpio.analyse") as span_:
        span_.set(nodes=ct.n, backend="compiled")
        return _analyse_compiled_tape(
            ct,
            output_ids,
            input_ids=input_ids,
            intermediate_ids=intermediate_ids,
            delta=delta,
            simplify=simplify,
            structure=structure,
        )


def _analyse_compiled_tape(
    ct: CompiledTape,
    output_ids: Sequence[int],
    *,
    input_ids: Sequence[int] = (),
    intermediate_ids: Sequence[int] = (),
    delta: float = 1e-6,
    simplify: bool = True,
    structure: TraceStructure | None = None,
) -> SignificanceReport:
    output_ids = list(output_ids)
    if not output_ids:
        raise ValueError("analyse_compiled needs at least one output")
    if structure is None:
        structure = TraceStructure(ct, output_ids, simplify=simplify)
    elif structure.simplified != simplify:
        raise ValueError(
            "TraceStructure was built with a different `simplify` setting"
        )
    n = ct.n
    interval = ct.interval_mode
    value_lo = ct.value_lo
    value_hi = ct.value_hi

    if len(output_ids) == 1:
        alo, ahi = ct.adjoint({output_ids[0]: 1.0})
        with _obs_span("scorpio.eq11") as sp:
            sig = eq11_from_sweep(
                value_lo, value_hi, alo, ahi, interval_mode=interval
            )
            sp.set(nodes=n, outputs=1)
        if interval:

            def build_adjoints() -> list[Any]:
                return [
                    Interval(lo, hi)
                    for lo, hi in zip(alo.tolist(), ahi.tolist())
                ]

        else:

            def build_adjoints() -> list[Any]:
                return alo.tolist()

    else:
        lo, hi = ct.adjoint_vector(output_ids)
        with _obs_span("scorpio.eq11") as sp:
            sig = eq11_vector(
                value_lo,
                value_hi,
                lo,
                hi,
                interval_mode=interval,
                scratch=ct._scratch,
            )
            sp.set(nodes=n, outputs=len(output_ids))

        def build_adjoints() -> list[Any]:
            # significance_map_vector keeps the hull of the per-output
            # adjoints on every node, interval tape or not.  `lo`/`hi`
            # are fresh per sweep, so deferring the hulls to first graph
            # access is safe and keeps them off the replay hot path.
            hull_lo = np.min(lo, axis=1)
            hull_hi = np.max(hi, axis=1)
            return [
                Interval(l, h)
                for l, h in zip(hull_lo.tolist(), hull_hi.tolist())
            ]

    # Snapshot the value columns eagerly: a later `ct.forward` overwrites
    # them in place, and the report's lazy graph must keep showing the
    # values this analysis ran on.  (The adjoint arrays are fresh per
    # call, so closing over them is safe.)
    return _assemble_from_columns(
        structure=structure,
        sig_list=sig.tolist(),
        vlo_snap=value_lo.tolist(),
        vhi_snap=value_hi.tolist(),
        is_iv_snap=ct.value_is_interval.tolist(),
        build_adjoints=build_adjoints,
        labels=ct.labels,
        delta=delta,
        simplify=simplify,
        input_ids=input_ids,
        intermediate_ids=intermediate_ids,
        output_ids=output_ids,
        n=n,
    )


def _assemble_from_columns(
    *,
    structure: TraceStructure,
    sig_list: list,
    vlo_snap: list,
    vhi_snap: list,
    is_iv_snap: list,
    build_adjoints,
    labels,
    delta,
    simplify,
    input_ids,
    intermediate_ids,
    output_ids,
    n,
) -> SignificanceReport:
    """Graphs + S5 + report from one analysis' scalar columns.

    Shared verbatim by the scalar replay path and the per-lane slices of
    a batched replay (:func:`analyse_replay_lanes`) — sharing the code is
    what keeps a lane's report byte-identical to its scalar twin.
    """
    ops = structure.ops
    adjoint_memo: list[Any] = []
    value_memo: list[Any] = []

    def adjoints() -> list[Any]:
        if not adjoint_memo:
            adjoint_memo.append(build_adjoints())
        return adjoint_memo[0]

    def values() -> list[Any]:
        if not value_memo:
            value_memo.append(
                [
                    Interval(l, h) if f else l
                    for l, h, f in zip(vlo_snap, vhi_snap, is_iv_snap)
                ]
            )
        return value_memo[0]

    def lazy_graph(ids, parents, merged, levels) -> _LazyDynDFG:
        def build() -> dict[int, DFGNode]:
            adjs = adjoints()
            vals = values()
            # `levels` may itself be lazy (a thunk): raw BFS levels are
            # only needed if the raw graph is ever materialized.
            lvls = levels() if callable(levels) else levels
            return {
                i: DFGNode(
                    id=i,
                    op=ops[i],
                    label=labels.get(i),
                    value=vals[i],
                    adjoint=adjs[i],
                    significance=sig_list[i],
                    parents=parents[i],
                    level=lvls.get(i),
                    merged=merged[i] if merged is not None else (),
                )
                for i in ids
            }

        return _LazyDynDFG(build, output_ids)

    raw = lazy_graph(
        range(n), structure.raw_parents, None, structure.raw_levels
    )
    if simplify:
        simplified = lazy_graph(
            structure.surv,
            structure.s_parents,
            structure.s_merged,
            structure.s_levels,
        )
    else:
        simplified = raw

    return _scan_and_assemble(
        lazy_graph=lazy_graph,
        raw=raw,
        simplified=simplified,
        surv=structure.surv,
        s_parents=structure.s_parents,
        s_merged=structure.s_merged,
        s_levels=structure.s_levels,
        sig_list=sig_list,
        delta=delta,
        input_ids=input_ids,
        intermediate_ids=intermediate_ids,
        output_ids=output_ids,
        labels=labels,
        n=n,
        scan_members=structure.scan_members(),
    )


def analyse_compiled(
    tape: Tape,
    output_ids: Sequence[int],
    *,
    input_ids: Sequence[int] = (),
    intermediate_ids: Sequence[int] = (),
    delta: float = 1e-6,
    simplify: bool = True,
) -> SignificanceReport:
    """The full ANALYSE pipeline through the compiled fast path.

    Freezes ``tape``, runs the vectorized reverse sweep (scalar seed for a
    single output, vector adjoint for many — mirroring
    ``Analysis.analyse``), computes Eq. 11, S4 and S5 on arrays, and
    returns a :class:`SignificanceReport` byte-identical (through
    ``report_to_json``) to the object pipeline's.  The report's graphs are
    materialized lazily on first access; unlike the object sweep, tape
    ``Node.adjoint`` attributes are left untouched — the report carries
    every adjoint (use the object path if you need them on the tape).
    """
    output_ids = list(output_ids)
    if not output_ids:
        raise ValueError("analyse_compiled needs at least one output")
    return analyse_compiled_tape(
        CompiledTape(tape),
        output_ids,
        input_ids=input_ids,
        intermediate_ids=intermediate_ids,
        delta=delta,
        simplify=simplify,
    )


def analyse_replay_lanes(
    ct: CompiledTape,
    lanes: Any,
    output_ids: Sequence[int],
    *,
    input_ids: Sequence[int] = (),
    intermediate_ids: Sequence[int] = (),
    delta: float = 1e-6,
    simplify: bool = True,
    structure: TraceStructure | None = None,
) -> list[SignificanceReport]:
    """Full ANALYSE of every lane of one batched replay: one sweep, L reports.

    ``lanes`` is the :class:`repro.ad.compiled.ReplayLanes` of a
    :meth:`CompiledTape.forward_lanes` call.  The expensive work — the
    reverse adjoint sweep and Eq. 11 — runs once over the whole ``(n, L)``
    lane block; the per-lane remainder (variance scan, lazy graphs,
    report assembly) reuses the exact scalar assembly path on each lane's
    columns.  Lane ``l``'s report is therefore byte-identical (through
    ``report_to_json``) to a scalar replay — and hence to a fresh
    recording — of lane ``l``'s inputs.  This is what lets
    :mod:`repro.serve` coalesce concurrent requests into one sweep while
    still answering each caller with the bytes it would have gotten
    alone.
    """
    output_ids = list(output_ids)
    if not output_ids:
        raise ValueError("analyse_replay_lanes needs at least one output")
    if structure is None:
        structure = TraceStructure(ct, output_ids, simplify=simplify)
    elif structure.simplified != simplify:
        raise ValueError(
            "TraceStructure was built with a different `simplify` setting"
        )
    n = ct.n
    L = lanes.n_lanes
    interval = ct.interval_mode
    vlo = lanes.value_lo
    vhi = lanes.value_hi
    _C_ANALYSES.inc(L)
    with _obs_span("scorpio.analyse_lanes") as span_:
        span_.set(nodes=n, lanes=L, backend="compiled")
        if len(output_ids) == 1:
            alo, ahi = lanes.adjoint({output_ids[0]: 1.0})
            with _obs_span("scorpio.eq11") as sp:
                sig = eq11_from_sweep(
                    vlo, vhi, alo, ahi, interval_mode=interval
                )
                sp.set(nodes=n, outputs=1, lanes=L)

            def lane_sig(lane: int) -> list:
                return sig[:, lane].tolist()

            if interval:

                def lane_adjoints(lane: int):
                    def build() -> list[Any]:
                        return [
                            Interval(lo, hi)
                            for lo, hi in zip(
                                alo[:, lane].tolist(), ahi[:, lane].tolist()
                            )
                        ]

                    return build

            else:

                def lane_adjoints(lane: int):
                    def build() -> list[Any]:
                        return alo[:, lane].tolist()

                    return build

        else:
            lo, hi = lanes.adjoint_vector(output_ids)

            def lane_sig(lane: int) -> list:
                # Per-lane Eq. 11 over the (n, m) adjoint slice: the
                # elementwise products and the axis-1 sum visit the same
                # element sequence as the scalar path, so each lane's
                # significances are bit-identical to it.
                with _obs_span("scorpio.eq11") as sp:
                    s = eq11_vector(
                        vlo[:, lane],
                        vhi[:, lane],
                        lo[:, lane, :],
                        hi[:, lane, :],
                        interval_mode=interval,
                    )
                    sp.set(nodes=n, outputs=len(output_ids))
                return s.tolist()

            def lane_adjoints(lane: int):
                def build() -> list[Any]:
                    hull_lo = np.min(lo[:, lane, :], axis=1)
                    hull_hi = np.max(hi[:, lane, :], axis=1)
                    return [
                        Interval(a, b)
                        for a, b in zip(hull_lo.tolist(), hull_hi.tolist())
                    ]

                return build

        reports = []
        for lane in range(L):
            reports.append(
                _assemble_from_columns(
                    structure=structure,
                    sig_list=lane_sig(lane),
                    vlo_snap=vlo[:, lane].tolist(),
                    vhi_snap=vhi[:, lane].tolist(),
                    is_iv_snap=ct.value_is_interval.tolist(),
                    build_adjoints=lane_adjoints(lane),
                    labels=ct.labels,
                    delta=delta,
                    simplify=simplify,
                    input_ids=input_ids,
                    intermediate_ids=intermediate_ids,
                    output_ids=output_ids,
                    n=n,
                )
            )
    return reports
