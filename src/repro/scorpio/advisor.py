"""Approximation advisor — "automatic detection of light-weight functions
to approximate tasks" (future work, §6).

Given an analysed tape, find the *expensive* intrinsic operations
(exp, log, pow, sqrt, erf, sin, cos) that sit in *low-significance*
regions of the DynDFG and suggest their fastapprox substitutes, with the
estimated dynamic-cost saving from :data:`repro.fastmath.COSTS`.

This automates the choice the paper's BlackScholes port made by hand:
blocks C and D were approximated "using less accurate but faster
implementations of mathematical functions such as exp and sqrt".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fastmath import COSTS

from .report import SignificanceReport

__all__ = ["Suggestion", "suggest_approximations", "render_advice"]

# Tape op name -> (accurate cost key, fastapprox replacement, fast key).
_REPLACEABLE = {
    "exp": ("exp", "fast_exp", "fast_exp"),
    "log": ("log", "fast_log", "fast_log"),
    "sqrt": ("sqrt", "fast_sqrt", "fast_sqrt"),
    "erf": ("erf", "fast_erf", "fast_erf"),
    "erfc": ("erf", "fast_erf", "fast_erf"),
    "sin": ("sin", "fast_sin", "fast_sin"),
    "cos": ("cos", "fast_cos", "fast_cos"),
    "pow2": ("pow", "fast_pow", "fast_pow"),
    "pow3": ("pow", "fast_pow", "fast_pow"),
}


@dataclass
class Suggestion:
    """One replaceable operation."""

    node_id: int
    op: str
    replacement: str
    significance: float  # relative to the most significant scored node
    cost_saving: float  # accurate cost minus fast cost, abstract ops

    @property
    def score(self) -> float:
        """Ranking score: big savings on insignificant ops first."""
        return self.cost_saving * (1.0 - self.significance)


def suggest_approximations(
    report: SignificanceReport,
    significance_threshold: float = 0.25,
) -> list[Suggestion]:
    """Expensive ops whose relative significance is below the threshold.

    Significance is normalised by the largest node significance in the
    graph, so the threshold is scale-free.  Results are ordered by
    descending :attr:`Suggestion.score`.
    """
    graph = report.raw_graph
    peak = max(
        (n.significance for n in graph if n.significance is not None),
        default=0.0,
    )
    suggestions: list[Suggestion] = []
    for node in graph:
        mapping = _REPLACEABLE.get(node.op)
        if mapping is None:
            continue
        accurate_key, replacement, fast_key = mapping
        relative = (
            (node.significance or 0.0) / peak if peak > 0 else 0.0
        )
        if relative > significance_threshold:
            continue
        suggestions.append(
            Suggestion(
                node_id=node.id,
                op=node.op,
                replacement=replacement,
                significance=relative,
                cost_saving=COSTS[accurate_key] - COSTS[fast_key],
            )
        )
    suggestions.sort(key=lambda s: s.score, reverse=True)
    return suggestions


def render_advice(suggestions: list[Suggestion]) -> str:
    """Human-readable advice block."""
    if not suggestions:
        return "no low-significance expensive operations found"
    lines = [
        f"{len(suggestions)} operation(s) eligible for fastapprox "
        "substitution (least significant, biggest saving first):"
    ]
    for s in suggestions:
        lines.append(
            f"  node #{s.node_id}: {s.op} -> {s.replacement}  "
            f"(rel. significance {s.significance:.3f}, "
            f"saves ~{s.cost_saving:.0f} ops/call)"
        )
    return "\n".join(lines)
