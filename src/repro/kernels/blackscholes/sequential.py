"""Black-Scholes option pricing — reference implementation (Section 4.1.5).

European option pricing under the Black-Scholes model (the PARSEC
benchmark's kernel)::

    d1 = (ln(S/K) + (r + v²/2)·T) / (v·√T)
    d2 = d1 − v·√T
    call = S·N(d1) − K·e^{−rT}·N(d2)
    put  = K·e^{−rT}·N(−d2) − S·N(−d1)

with N the standard normal CDF.  The computation decomposes into the four
blocks the paper's analysis ranks ``sig(A) > sig(B) ≫ sig(C) > sig(D)``:

* **A** — d1/d2 (log, divide, sqrt);
* **B** — N(d1), the spot-side CDF;
* **C** — N(d2), the strike-side CDF;
* **D** — the discount factor e^{−rT}.

Generic scalar functions feed the significance analysis; NumPy versions
price whole portfolios.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.ad import intrinsics as op

__all__ = [
    "cndf",
    "black_scholes_blocks",
    "black_scholes_price",
    "price_portfolio",
    "OPS_PER_OPTION_ACCURATE",
    "OPS_PER_OPTION_APPROX",
]

_INV_SQRT2 = 1.0 / math.sqrt(2.0)

# Abstract per-option op counts (accurate uses libm erf/exp/log/sqrt).
OPS_PER_OPTION_ACCURATE = 260.0
OPS_PER_OPTION_APPROX = 90.0


def cndf(x: Any) -> Any:
    """Standard normal CDF via the error function (generic numerics)."""
    return 0.5 * (1.0 + op.erf(x * _INV_SQRT2))


def black_scholes_blocks(
    spot: Any, strike: Any, rate: Any, volatility: Any, expiry: Any
) -> dict[str, Any]:
    """The four analysis blocks A-D plus the final call price."""
    sqrt_t = op.sqrt(expiry)
    vol_sqrt_t = volatility * sqrt_t
    d1 = (op.log(spot / strike) + (rate + 0.5 * volatility * volatility) * expiry) / vol_sqrt_t
    d2 = d1 - vol_sqrt_t
    n_d1 = cndf(d1)
    discount = op.exp(-rate * expiry)
    n_d2 = cndf(d2)
    call = spot * n_d1 - strike * discount * n_d2
    return {"A": d1, "B": n_d1, "C": n_d2, "D": discount, "call": call}


def black_scholes_price(
    spot: Any,
    strike: Any,
    rate: Any,
    volatility: Any,
    expiry: Any,
    put: bool = False,
) -> Any:
    """Price one option in generic numerics."""
    blocks = black_scholes_blocks(spot, strike, rate, volatility, expiry)
    if not put:
        return blocks["call"]
    # Put-call parity: P = C - S + K·e^{-rT}.
    return blocks["call"] - spot + strike * blocks["D"]


def price_portfolio(
    spots: np.ndarray,
    strikes: np.ndarray,
    rates: np.ndarray,
    volatilities: np.ndarray,
    expiries: np.ndarray,
    puts: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised accurate pricing of a whole portfolio."""
    s = np.asarray(spots, dtype=np.float64)
    k = np.asarray(strikes, dtype=np.float64)
    r = np.asarray(rates, dtype=np.float64)
    v = np.asarray(volatilities, dtype=np.float64)
    t = np.asarray(expiries, dtype=np.float64)

    sqrt_t = np.sqrt(t)
    vol_sqrt_t = v * sqrt_t
    d1 = (np.log(s / k) + (r + 0.5 * v * v) * t) / vol_sqrt_t
    d2 = d1 - vol_sqrt_t

    def n(x: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + _erf_np(x * _INV_SQRT2))

    discount = np.exp(-r * t)
    call = s * n(d1) - k * discount * n(d2)
    if puts is None:
        return call
    put_price = call - s + k * discount
    return np.where(np.asarray(puts, dtype=bool), put_price, call)


try:  # scipy's erf is vectorised in C; fall back to math.erf otherwise
    from scipy.special import erf as _erf_np  # type: ignore[import-untyped]
except ImportError:  # pragma: no cover - scipy is a soft dependency
    _erf_np = np.vectorize(math.erf, otypes=[np.float64])
