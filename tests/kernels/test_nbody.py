"""Tests for the N-Body benchmark."""

import math

import numpy as np
import pytest

from repro.kernels.nbody import (
    RegionGrid,
    analyse_nbody,
    forces_full,
    lattice_system,
    lj_pair_force,
    lj_potential,
    nbody_perforated,
    nbody_significance,
    pair_forces,
    potential_energy,
    region_significance,
    simulate_reference,
)
from repro.metrics import aggregate_relative_error


@pytest.fixture(scope="module")
def system():
    return lattice_system(side=5, seed=42)


class TestPhysics:
    def test_potential_zero_at_sigma(self):
        assert lj_potential(1.0) == pytest.approx(0.0)

    def test_potential_minimum_at_equilibrium(self):
        r_min = 2 ** (1 / 6)
        v_min = lj_potential(r_min**2)
        assert v_min == pytest.approx(-1.0)
        assert lj_potential((r_min * 0.95) ** 2) > v_min
        assert lj_potential((r_min * 1.05) ** 2) > v_min

    def test_force_zero_at_equilibrium(self):
        r_min = 2 ** (1 / 6)
        fx, fy, fz = lj_pair_force(r_min, 0.0, 0.0)
        assert fx == pytest.approx(0.0, abs=1e-12)

    def test_force_repulsive_close(self):
        fx, _, _ = lj_pair_force(0.9, 0.0, 0.0)
        assert fx > 0  # pushes atoms apart

    def test_force_attractive_far(self):
        fx, _, _ = lj_pair_force(1.5, 0.0, 0.0)
        assert fx < 0

    def test_force_decays_fast(self):
        f1, _, _ = lj_pair_force(1.5, 0.0, 0.0)
        f3, _, _ = lj_pair_force(3.0, 0.0, 0.0)
        assert abs(f3) < abs(f1) / 50

    def test_pair_force_matches_gradient(self):
        # F = -dV/dr, central difference check.
        r, h = 1.3, 1e-6
        fx, _, _ = lj_pair_force(r, 0.0, 0.0)
        dv = (lj_potential((r + h) ** 2) - lj_potential((r - h) ** 2)) / (2 * h)
        assert fx == pytest.approx(-dv, rel=1e-4)


class TestForces:
    def test_newton_third_law(self, system):
        forces = forces_full(system.positions)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    def test_pair_forces_matches_scalar(self, system):
        pos = system.positions[:4]
        forces = pair_forces(pos[:1], pos[1:])
        expected = np.zeros(3)
        for j in range(1, 4):
            d = pos[0] - pos[j]
            expected += np.array(lj_pair_force(*d))
        assert np.allclose(forces[0], expected)

    def test_exclude_self(self, system):
        pos = system.positions[:5]
        forces = pair_forces(pos, pos, exclude_self=True)
        assert np.all(np.isfinite(forces))

    def test_potential_energy_negative_for_lattice(self, system):
        assert potential_energy(system.positions) < 0


class TestSimulation:
    def test_reference_deterministic(self, system):
        a = simulate_reference(system, steps=2)
        b = simulate_reference(system, steps=2)
        assert np.array_equal(a.positions, b.positions)

    def test_input_not_mutated(self, system):
        before = system.positions.copy()
        simulate_reference(system, steps=2)
        assert np.array_equal(system.positions, before)

    def test_energy_roughly_conserved(self, system):
        state = simulate_reference(system, steps=5, dt=0.002)
        def total(s):
            kinetic = 0.5 * np.sum(s.velocities**2)
            return kinetic + potential_energy(s.positions)
        drift = abs(total(state) - total(system))
        assert drift < 0.05 * abs(total(system))

    def test_lattice_zero_net_momentum(self, system):
        assert np.allclose(system.velocities.sum(axis=0), 0.0, atol=1e-9)

    def test_lattice_min_separation_safe(self, system):
        delta = system.positions[:, None] - system.positions[None, :]
        r = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        np.fill_diagonal(r, np.inf)
        assert r.min() > 0.9  # no explosive overlaps


class TestRegions:
    def test_members_partition_all_particles(self, system):
        grid = RegionGrid.fit(system.positions, grid=3)
        members = grid.members(system.positions)
        total = np.concatenate(list(members.values()))
        assert sorted(total) == list(range(system.count))

    def test_members_keyed_correctly(self, system):
        grid = RegionGrid.fit(system.positions, grid=3)
        regions = grid.region_of(system.positions)
        for region, idx in grid.members(system.positions).items():
            assert np.all(regions[idx] == region)

    def test_chebyshev_distance(self):
        grid = RegionGrid(grid=4, lo=np.zeros(3), cell=np.ones(3))
        a = grid.region_of(np.array([[0.5, 0.5, 0.5]]))[0]
        b = grid.region_of(np.array([[3.5, 2.5, 0.5]]))[0]
        assert grid.chebyshev(a, b) == 3

    def test_distance_classes_cover_all_regions(self):
        grid = RegionGrid(grid=3, lo=np.zeros(3), cell=np.ones(3))
        classes = grid.distance_classes(13)  # centre cell
        covered = [r for rs in classes.values() for r in rs]
        assert sorted(covered) == list(range(27))

    def test_region_significance_decay(self):
        sigs = [region_significance(d) for d in range(6)]
        assert sigs[0] == sigs[1] == 1.0
        assert all(a >= b for a, b in zip(sigs[1:], sigs[2:]))
        assert sigs[-1] >= 0.05

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            RegionGrid.fit(np.zeros((4, 3)), grid=0)


class TestAnalysis:
    def test_distance_anticorrelated(self):
        small = lattice_system(side=3, seed=1)
        result = analyse_nbody(small.positions, target=13)
        assert result.distance_rank_correlation < -0.9

    def test_nearest_atom_most_significant(self):
        small = lattice_system(side=3, seed=1)
        result = analyse_nbody(small.positions, target=13)
        nearest = int(np.argmin(result.distances))
        assert result.significances[nearest] == pytest.approx(1.0)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            analyse_nbody(np.zeros((3, 3)), target=7)


class TestSignificanceVersion:
    def test_ratio_one_exact(self, system):
        ref = simulate_reference(system, steps=2)
        run, state = nbody_significance(system, 1.0, steps=2, grid=3)
        assert np.allclose(run.output, ref.positions, atol=1e-9)

    def test_ratio_zero_tiny_error(self, system):
        ref = simulate_reference(system, steps=2)
        run, _ = nbody_significance(system, 0.0, steps=2, grid=3)
        err = aggregate_relative_error(ref.positions, run.output)
        assert err < 1e-3  # near regions pinned accurate

    def test_energy_monotone(self, system):
        energies = [
            nbody_significance(system, r, steps=2, grid=3)[0].joules
            for r in (0.0, 0.5, 1.0)
        ]
        assert energies == sorted(energies)

    def test_error_monotone(self, system):
        ref = simulate_reference(system, steps=2)
        errors = [
            aggregate_relative_error(
                ref.positions,
                nbody_significance(system, r, steps=2, grid=3)[0].output,
            )
            for r in (0.0, 0.5, 1.0)
        ]
        assert errors[0] >= errors[1] >= errors[2]


class TestPerforated:
    def test_ratio_one_exact(self, system):
        ref = simulate_reference(system, steps=2)
        run, _ = nbody_perforated(system, 1.0, steps=2)
        assert np.allclose(run.output, ref.positions, atol=1e-9)

    def test_sig_much_better_than_perforation(self, system):
        ref = simulate_reference(system, steps=2)
        sig_err = aggregate_relative_error(
            ref.positions,
            nbody_significance(system, 0.2, steps=2, grid=3)[0].output,
        )
        perf_err = aggregate_relative_error(
            ref.positions, nbody_perforated(system, 0.2, steps=2)[0].output
        )
        assert perf_err > 5 * sig_err

    def test_no_task_overhead_energy(self, system):
        run, _ = nbody_perforated(system, 1.0, steps=2)
        assert run.energy.overhead == 0.0
