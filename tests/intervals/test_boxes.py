"""Tests for interval vectors (boxes)."""

import random

import pytest

from repro.intervals import Box, Interval


class TestConstruction:
    def test_from_intervals(self):
        box = Box([Interval(0, 1), Interval(2, 3)])
        assert box.dimension == 2

    def test_scalars_coerced(self):
        box = Box([1.0, 2.0])
        assert box[0] == Interval(1.0) and box[1] == Interval(2.0)

    def test_from_bounds(self):
        box = Box.from_bounds([0, 1], [2, 3])
        assert box[0] == Interval(0, 2) and box[1] == Interval(1, 3)

    def test_from_bounds_mismatch(self):
        with pytest.raises(ValueError):
            Box.from_bounds([0], [1, 2])

    def test_from_point(self):
        box = Box.from_point([1.0, 2.0], radius=0.5)
        assert box[0] == Interval(0.5, 1.5)


class TestInspection:
    def test_len_iter_getitem(self):
        box = Box([Interval(0, 1), Interval(1, 3)])
        assert len(box) == 2
        assert list(box)[1] == Interval(1, 3)

    def test_widths(self):
        assert Box([Interval(0, 1), Interval(1, 4)]).widths == (1.0, 3.0)

    def test_max_width(self):
        assert Box([Interval(0, 1), Interval(1, 4)]).max_width == 3.0

    def test_midpoint(self):
        assert Box([Interval(0, 2), Interval(2, 4)]).midpoint == (1.0, 3.0)

    def test_volume(self):
        assert Box([Interval(0, 2), Interval(0, 3)]).volume == 6.0

    def test_contains(self):
        box = Box([Interval(0, 1), Interval(0, 1)])
        assert box.contains((0.5, 0.5))
        assert not box.contains((1.5, 0.5))
        assert not box.contains((0.5,))

    def test_widest_dimension(self):
        box = Box([Interval(0, 1), Interval(0, 5), Interval(0, 2)])
        assert box.widest_dimension() == 1

    def test_widest_empty_rejected(self):
        with pytest.raises(ValueError):
            Box([]).widest_dimension()


class TestSplitAndSample:
    def test_split_default_widest(self):
        box = Box([Interval(0, 1), Interval(0, 4)])
        left, right = box.split()
        assert left[1] == Interval(0, 2) and right[1] == Interval(2, 4)
        assert left[0] == box[0]

    def test_split_explicit_dimension(self):
        box = Box([Interval(0, 2), Interval(0, 4)])
        left, right = box.split(0)
        assert left[0] == Interval(0, 1)

    def test_sample_inside(self):
        box = Box([Interval(-1, 1), Interval(10, 20)])
        rng = random.Random(0)
        for point in box.sample(rng, 50):
            assert box.contains(point)

    def test_equality_and_hash(self):
        a = Box([Interval(0, 1)])
        b = Box([Interval(0, 1)])
        assert a == b and hash(a) == hash(b)

    def test_repr(self):
        assert "Box" in repr(Box([Interval(0, 1)]))
