"""Chrome trace export (:mod:`repro.obs.export`): events, flows, files."""

import json
import os
import threading

import pytest

from repro.obs import context, export, trace


@pytest.fixture
def tracing():
    previous = trace.set_enabled(True)
    trace.clear()
    yield
    trace.set_enabled(previous)
    trace.clear()


def _events(kind, events):
    return [e for e in events if e["ph"] == kind]


class TestCompleteEvents:
    def test_span_becomes_x_event(self, tracing):
        with trace.span("stage", nodes=5) as sp:
            with trace.span("leaf"):
                pass
        events = export.chrome_trace_events(trace.spans())
        xs = {e["name"]: e for e in _events("X", events)}
        assert set(xs) == {"stage", "leaf"}
        stage = xs["stage"]
        assert stage["ph"] == "X" and stage["cat"] == "repro"
        assert stage["pid"] == os.getpid()
        assert stage["tid"] == threading.get_ident()
        assert stage["ts"] == pytest.approx(sp.start_epoch * 1e6)
        assert stage["dur"] == pytest.approx(sp.elapsed_seconds * 1e6)
        assert stage["args"]["nodes"] == 5
        # The leaf sits inside the stage on the timeline.
        leaf = xs["leaf"]
        assert leaf["ts"] >= stage["ts"]
        assert leaf["ts"] + leaf["dur"] <= stage["ts"] + stage["dur"] + 1.0

    def test_trace_ids_land_in_args(self, tracing):
        ctx = context.new_trace()
        with context.use(ctx):
            with trace.span("op"):
                pass
        (event,) = _events("X", export.chrome_trace_events(trace.spans()))
        assert event["args"]["trace_id"] == ctx.trace_id
        assert event["args"]["parent_id"] == ctx.span_id
        assert len(event["args"]["span_id"]) == 16

    def test_non_primitive_attrs_are_repred(self, tracing):
        with trace.span("op") as sp:
            sp.set(lanes=[1, 2], note="plain")
        (event,) = _events("X", export.chrome_trace_events(trace.spans()))
        assert event["args"]["lanes"] == "[1, 2]"
        assert event["args"]["note"] == "plain"

    def test_open_and_null_spans_are_skipped(self, tracing):
        open_span = trace.manual_span("still.open")  # never finished
        trace.disable()
        null = trace.span("ignored")
        trace.enable()
        assert export.chrome_trace_events([open_span, null]) == []


class TestFlowArrows:
    def test_structural_children_draw_no_flow(self, tracing):
        ctx = context.new_trace()
        with context.use(ctx):
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        events = export.chrome_trace_events(trace.spans())
        assert _events("s", events) == []
        assert _events("f", events) == []

    def test_cross_boundary_parent_draws_flow_pair(self, tracing):
        """A separately-adopted root whose parent_id names a span in
        another tree gets an s→f arrow pair binding the two."""
        ctx = context.new_trace()
        with context.use(ctx):
            with trace.span("http") as http:
                pass
        worker_ctx = context.TraceContext(
            trace_id=ctx.trace_id,
            span_id=context.new_span_id(),
            parent_id=http.span_id,
        )
        worker = trace.manual_span("runtime.task", worker_ctx).finish()
        trace.adopt([worker])
        events = export.chrome_trace_events(trace.spans())
        starts = _events("s", events)
        finishes = _events("f", events)
        assert len(starts) == 1 and len(finishes) == 1
        (s,), (f,) = starts, finishes
        assert s["id"] == f["id"]
        assert s["id"] == int(worker_ctx.span_id, 16) & 0x7FFFFFFF
        assert s["ts"] == pytest.approx(http.start_epoch * 1e6)
        assert f["ts"] == pytest.approx(worker.start_epoch * 1e6)

    def test_unresolvable_parent_draws_nothing(self, tracing):
        orphan_ctx = context.TraceContext(
            trace_id="a" * 32,
            span_id=context.new_span_id(),
            parent_id="b" * 16,  # no such span in the forest
        )
        orphan = trace.manual_span("orphan", orphan_ctx).finish()
        events = export.chrome_trace_events([orphan])
        assert _events("s", events) == []
        assert len(_events("X", events)) == 1


class TestDumpFile:
    def test_dump_is_loadable_json_with_envelope(self, tracing, tmp_path):
        with trace.span("a"):
            pass
        out = export.dump_chrome_trace(tmp_path / "sub" / "t.trace.json")
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        names = {e["name"] for e in payload["traceEvents"]}
        assert "a" in names

    def test_process_metadata_names_every_pid(self, tracing):
        with trace.span("local"):
            pass
        (root,) = trace.spans()
        foreign = trace.manual_span("remote").finish()
        foreign.pid = root.pid + 1  # simulate a worker process
        metas = _events("M", export.chrome_trace_events([root, foreign]))
        by_pid = {e["pid"]: e["args"]["name"] for e in metas}
        assert by_pid[root.pid].startswith("repro (")
        assert by_pid[foreign.pid].startswith("repro worker")

    def test_explicit_roots_override_ring(self, tracing, tmp_path):
        with trace.span("in.ring"):
            pass
        solo = trace.manual_span("solo").finish()
        out = export.dump_chrome_trace(tmp_path / "t.json", roots=[solo])
        payload = json.loads(out.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert names == {"solo"}
