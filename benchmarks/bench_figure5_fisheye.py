"""Figure 5: InverseMapping significance map benchmark.

Regenerates the radial significance pattern (border > centre) over a grid
of output pixels and times the per-pixel interval-adjoint analyses.
"""

import pytest

from repro.kernels.fisheye import (
    analyse_inverse_mapping,
    default_config,
    make_fisheye_input,
)


def test_figure5_radial_pattern(benchmark, bench_scene):
    config = default_config(128, 96)
    input_image = make_fisheye_input(bench_scene, config)

    analysis = benchmark.pedantic(
        analyse_inverse_mapping,
        args=(input_image, config),
        kwargs={"grid": (8, 10), "jitter_samples": 8},
        rounds=1,
        iterations=1,
    )
    profile = analysis.radial_profile(config, bins=4)

    # Paper: significance rises toward the image border.
    assert profile[-1] > 1.2 * profile[0]
    assert profile[-1] == max(profile)
    benchmark.extra_info["radial_profile"] = [round(p, 4) for p in profile]
