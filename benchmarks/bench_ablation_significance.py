"""Ablation: the Eq. 11 significance definition vs alternatives.

DESIGN.md §6: why the paper multiplies the value interval by the
derivative interval.  On the Maclaurin example we score every term under
four definitions and check which ones recover the expected ranking
(term1 > term2 > ... and term0 = 0).  Pure interval width and pure
derivative magnitude both fail; the combined definitions succeed — the
argument for pairing IA with AD.
"""

import pytest

from repro.ad import ADouble, Tape
from repro.intervals import Interval
from repro.scorpio import SIGNIFICANCE_VARIANTS, score_tape


def maclaurin_tape(x_hat=0.49, n=5):
    tape = Tape()
    with tape:
        x = ADouble.input(Interval(x_hat - 0.5, x_hat + 0.5), label="x", tape=tape)
        acc = ADouble.constant(0.0)
        term_ids = []
        for i in range(n):
            t = x**i
            term_ids.append(t.node.index)
            acc = acc + t
        tape.adjoint({acc.node.index: Interval(1.0)})
    return tape, term_ids


def _ranking_ok(scores, term_ids):
    values = [scores[t] for t in term_ids]
    return (
        values[0] == pytest.approx(0.0, abs=1e-9)
        and all(a > b for a, b in zip(values[1:], values[2:]))
    )


def test_ablation_significance_definitions(benchmark):
    tape, term_ids = maclaurin_tape()

    def run_all():
        return {
            name: score_tape(tape, name) for name in SIGNIFICANCE_VARIANTS
        }

    scored = benchmark(run_all)

    # The paper's definition and the first-order variant both recover the
    # Figure 3 ranking.
    assert _ranking_ok(scored["width_product"], term_ids)
    assert _ranking_ok(scored["first_order"], term_ids)

    # Derivative magnitude alone cannot: every term's adjoint is 1.
    deriv = [scored["derivative_mag"][t] for t in term_ids[1:]]
    assert max(deriv) == pytest.approx(min(deriv), rel=1e-9)

    benchmark.extra_info["per_variant_term_scores"] = {
        name: [round(scored[name][t], 4) for t in term_ids]
        for name in SIGNIFICANCE_VARIANTS
    }


def test_ablation_unknown_variant_rejected():
    tape, _ = maclaurin_tape(n=3)
    with pytest.raises(KeyError):
        score_tape(tape, "made_up")
