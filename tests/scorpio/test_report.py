"""Tests for the SignificanceReport views and rendering."""

import pytest

from repro.ad import ADouble
from repro.intervals import Interval
from repro.scorpio import Analysis


def make_report():
    an = Analysis(delta=1e-6)
    with an:
        x = an.input(Interval(0, 1), name="x")
        a = an.intermediate(x * 3.0, "big")
        b = an.intermediate(x * 0.1, "small")
        an.output(a + b, name="y")
    return an.analyse()


class TestViews:
    def test_significance_of(self):
        report = make_report()
        assert report.significance_of("big") > report.significance_of("small")

    def test_significance_of_unknown(self):
        with pytest.raises(KeyError):
            make_report().significance_of("nope")

    def test_significance_of_ambiguous_label(self):
        an = Analysis()
        with an:
            x = an.input(Interval(0, 1))
            an.intermediate(x * 2.0, "dup")
            an.intermediate(x * 3.0, "dup")
            an.output(x * 4.0)
        report = an.analyse()
        with pytest.raises(KeyError, match="ambiguous"):
            report.significance_of("dup")

    def test_labelled_significances_accumulate(self):
        an = Analysis()
        with an:
            x = an.input(Interval(0, 1))
            acc = ADouble.constant(0.0)
            for _ in range(3):
                t = x * 1.0
                an.intermediate(t, "term")
                acc = acc + t
            an.output(acc)
        report = an.analyse()
        per_term = report.labelled_significances()["term"]
        assert per_term == pytest.approx(3.0, rel=1e-6)

    def test_outputs_excluded_from_labelled(self):
        report = make_report()
        assert "y" not in report.labelled_significances()

    def test_normalised_sums_to_one(self):
        values = make_report().normalised_significances()
        assert sum(values.values()) == pytest.approx(1.0)

    def test_input_significances(self):
        report = make_report()
        assert set(report.input_significances()) == {"x"}

    def test_ranking_sorted(self):
        ranking = make_report().ranking()
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_graph_property_is_scan_graph(self):
        report = make_report()
        assert report.graph is report.scan.graph

    def test_task_partition(self):
        report = make_report()
        assert report.task_partition() == report.scan.task_nodes


class TestRendering:
    def test_to_text_mentions_labels(self):
        text = make_report().to_text()
        assert "big" in text and "small" in text
        assert "significance analysis report" in text

    def test_to_text_unnormalised(self):
        text = make_report().to_text(normalised=False)
        assert "normalised" not in text.splitlines()[-3]

    def test_to_text_reports_level(self):
        text = make_report().to_text()
        assert "variance level" in text or "no significance variance" in text

    def test_to_dot(self):
        dot = make_report().to_dot()
        assert dot.startswith('digraph "Gout"')
