"""Shared plumbing for the benchmark kernels.

Every benchmark exposes the same trio the Figure-7 harness consumes:

* ``run_significance(ratio, ...) -> KernelRun`` — the task-based,
  significance-driven version executed through
  :class:`~repro.runtime.TaskRuntime`;
* ``run_perforated(ratio, ...) -> KernelRun`` — the loop-perforation
  baseline at the same accurate-computation ratio;
* a quality function comparing a run's output against the fully accurate
  output (PSNR for the image kernels, relative error otherwise).

:class:`KernelRun` carries the output plus the modelled energy so the
sweep driver (:mod:`repro.experiments.sweep`) can assemble the plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.runtime import EnergyBreakdown, GroupStats

__all__ = ["KernelRun", "QUALITY_PSNR", "QUALITY_REL_ERR"]

QUALITY_PSNR = "psnr_db"
QUALITY_REL_ERR = "relative_error"


@dataclass
class KernelRun:
    """Output and cost of one benchmark execution.

    Attributes:
        output: whatever the kernel produces (image array, prices, ...).
        energy: modelled energy breakdown (Joules).
        stats: aggregated task counts (empty for perforated runs, which
            have no tasks).
        ratio: the requested accurate ratio.
        variant: ``"significance"`` or ``"perforation"``.
    """

    output: Any
    energy: EnergyBreakdown
    ratio: float
    variant: str
    stats: GroupStats = field(default_factory=GroupStats)

    @property
    def joules(self) -> float:
        """Total modelled energy in Joules."""
        return self.energy.total
