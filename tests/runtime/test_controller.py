"""Tests for the closed-loop ratio controller."""

import pytest

from repro.runtime.controller import RatioController


def linear_plant(ratio: float) -> float:
    """Synthetic kernel: energy 40..120 J linear in the ratio."""
    return 40.0 + 80.0 * ratio


class TestValidation:
    def test_budget_positive(self):
        with pytest.raises(ValueError):
            RatioController(energy_budget=0.0)

    def test_initial_ratio_range(self):
        with pytest.raises(ValueError):
            RatioController(energy_budget=10.0, initial_ratio=1.5)

    def test_negative_energy_rejected(self):
        controller = RatioController(energy_budget=10.0)
        with pytest.raises(ValueError):
            controller.observe(-1.0)


class TestControlLoop:
    def _run(self, budget, frames=40, gain=0.2):
        controller = RatioController(energy_budget=budget, gain=gain)
        for _ in range(frames):
            controller.observe(linear_plant(controller.ratio))
        return controller

    def test_converges_to_budget(self):
        controller = self._run(budget=80.0)
        assert controller.mean_energy(last=5) == pytest.approx(80.0, rel=0.05)
        assert controller.settled

    def test_converged_ratio_matches_plant(self):
        controller = self._run(budget=80.0)
        # 40 + 80 r = 80  =>  r = 0.5.
        assert controller.ratio == pytest.approx(0.5, abs=0.05)

    def test_generous_budget_saturates_high(self):
        controller = self._run(budget=500.0)
        assert controller.ratio == 1.0

    def test_impossible_budget_saturates_low(self):
        controller = self._run(budget=10.0)
        assert controller.ratio == 0.0

    def test_over_budget_lowers_ratio(self):
        controller = RatioController(energy_budget=50.0, initial_ratio=1.0)
        updated = controller.observe(100.0)
        assert updated < 1.0

    def test_under_budget_raises_ratio(self):
        controller = RatioController(energy_budget=100.0, initial_ratio=0.0)
        updated = controller.observe(40.0)
        assert updated > 0.0

    def test_history_recorded(self):
        controller = self._run(budget=80.0, frames=7)
        assert len(controller.history) == 7

    def test_mean_energy_requires_frames(self):
        controller = RatioController(energy_budget=10.0)
        with pytest.raises(ValueError):
            controller.mean_energy()


class TestOnRealKernel:
    def test_sobel_stream_tracks_budget(self):
        from repro.images import natural_image
        from repro.kernels.sobel import sobel_significance

        frames = [natural_image(64, 64, seed=s) for s in range(10)]
        full_cost = sobel_significance(frames[0], 1.0).joules
        budget = 0.8 * full_cost

        controller = RatioController(energy_budget=budget, gain=0.4)
        for frame in frames:
            run = sobel_significance(frame, controller.ratio)
            controller.observe(run.joules)

        assert controller.mean_energy(last=4) <= 1.15 * budget
