"""End-to-end observability of the analysis pipeline and runtime.

Drives :func:`analyse_dct_block` through a :class:`TraceCache` with
tracing enabled and checks (a) the span tree names the pipeline stages,
(b) the always-on counters tell the record/replay story, and (c)
``GroupStats.wall_seconds`` measures the barrier, not the task sum.
"""

import time

import numpy as np
import pytest

from repro.images import natural_image
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.profile import format_metrics_table, format_span_tree
from repro.runtime import SequentialExecutor, TaskRuntime, ThreadedExecutor
from repro.scorpio import TraceCache


@pytest.fixture
def tracing():
    previous = trace.set_enabled(True)
    trace.clear()
    yield
    trace.set_enabled(previous)
    trace.clear()


def _counter_values(names):
    reg = obs_metrics.registry()
    return {name: reg.value(name) for name in names}


class TestPipelineSpans:
    COUNTERS = (
        "trace_cache.records",
        "trace_cache.replays",
        "trace_cache.divergences",
        "tape.recordings",
        "ad.compiles",
        "replay.forwards",
        "scorpio.analyses",
        "scorpio.scans",
    )

    def test_dct_cache_span_tree_and_counters(self, tracing):
        from repro.kernels.dct.analysis import analyse_dct_block

        before = _counter_values(self.COUNTERS)
        cache = TraceCache()
        rng = np.random.default_rng(11)
        blocks = [rng.uniform(0.0, 255.0, (8, 8)) for _ in range(3)]
        maps = [analyse_dct_block(b, cache=cache) for b in blocks]
        assert all(m.shape == (8, 8) for m in maps)

        # Counter story: one record, two replays, no divergences.
        assert cache.stats() == {
            "records": 1,
            "replays": 2,
            "divergences": 0,
            "validations": 0,
            "traces": 1,
        }
        after = _counter_values(self.COUNTERS)
        delta = {k: after[k] - before[k] for k in self.COUNTERS}
        assert delta["trace_cache.records"] == 1
        assert delta["trace_cache.replays"] == 2
        assert delta["trace_cache.divergences"] == 0
        assert delta["tape.recordings"] == 1  # recorded exactly once
        assert delta["ad.compiles"] == 1
        assert delta["replay.forwards"] == 2
        assert delta["scorpio.analyses"] == 3  # every block analysed
        assert delta["scorpio.scans"] == 3

        # Span story: the roots and their pipeline children.
        roots = trace.spans()
        names = [r.name for r in roots]
        assert names.count("trace_cache.record") == 1
        assert names.count("trace_cache.replay") == 2
        all_names = {s.name for r in roots for s in r.walk()}
        for expected in (
            "ad.compile",
            "ad.forward",
            "ad.sweep",
            "scorpio.analyse",
            "scorpio.eq11",
            "scorpio.scan",
        ):
            assert expected in all_names, f"missing span {expected}"
        replay_root = next(
            r for r in roots if r.name == "trace_cache.replay"
        )
        child_names = {s.name for s in replay_root.walk()}
        assert "ad.forward" in child_names
        assert "scorpio.analyse" in child_names

        # The rendered views mention the stages and the cache counters.
        tree_text = format_span_tree(roots)
        assert "trace_cache.replay" in tree_text
        table_text = format_metrics_table()
        assert "trace_cache.replays" in table_text

    def test_runtime_spans_and_mode_counters(self, tracing):
        reg = obs_metrics.registry()
        names = (
            "runtime.tasks_submitted",
            "runtime.taskwaits",
            "runtime.tasks_accurate",
            "runtime.tasks_dropped",
        )
        before = {n: reg.value(n) for n in names}
        rt = TaskRuntime()
        for i in range(4):
            rt.submit(
                lambda v: v * 2,
                args=(i,),
                significance=1.0 - i / 10,
                label="g",
            )
        group = rt.taskwait("g", ratio=0.5)
        after = {n: reg.value(n) for n in names}
        assert after["runtime.tasks_submitted"] - before[
            "runtime.tasks_submitted"
        ] == 4
        assert after["runtime.taskwaits"] - before["runtime.taskwaits"] == 1
        assert after["runtime.tasks_accurate"] - before[
            "runtime.tasks_accurate"
        ] == group.stats.accurate
        assert after["runtime.tasks_dropped"] - before[
            "runtime.tasks_dropped"
        ] == group.stats.dropped
        roots = trace.spans()
        wait = next(r for r in roots if r.name == "runtime.taskwait")
        assert wait.attrs["label"] == "g"
        assert wait.attrs["tasks"] == 4
        # Sequential executor: task spans nest under the barrier span.
        assert {c.name for c in wait.children} == {"runtime.task"}


class TestWallSeconds:
    def test_sequential_wall_at_least_task_sum(self):
        rt = TaskRuntime(executor=SequentialExecutor())
        for _ in range(3):
            rt.submit(time.sleep, args=(0.02,), label="s")
        stats = rt.taskwait("s").stats
        assert stats.wall_seconds >= stats.elapsed_seconds

    def test_threaded_wall_below_task_sum(self):
        rt = TaskRuntime(executor=ThreadedExecutor(max_workers=4))
        for _ in range(4):
            rt.submit(time.sleep, args=(0.05,), label="p")
        stats = rt.taskwait("p").stats
        assert stats.total == 4
        assert stats.elapsed_seconds >= 0.2  # four sleeps, summed
        # Four 50ms sleeps on four workers: the barrier itself should
        # take well under the 200ms serial sum even on a loaded machine.
        assert stats.wall_seconds < 0.8 * stats.elapsed_seconds
