"""Overloaded adjoint type — the Python analogue of ``dco::ia1s::type``.

:class:`ADouble` wraps a value and records every elementary operation on
the active :class:`~repro.ad.tape.Tape`.  The wrapped value may be

* an :class:`~repro.intervals.Interval` — interval-adjoint mode, the
  paper's ``dco::ia1s::type`` used for significance analysis, or
* a plain ``float`` — classic scalar adjoint mode (``dco::a1s::type``),
  used in this repository to validate interval derivatives against exact
  gradients and finite differences.

Local partial derivatives are evaluated in the same algebra as the value,
so in interval mode each recorded edge carries an *enclosure* of the
partial derivative over the operand ranges (Eq. 10 of the paper).

Relational operators delegate to the interval comparison semantics: an
ambiguous comparison raises
:class:`~repro.intervals.AmbiguousComparisonError`, mirroring the paper's
Section 2.2 (analysis terminates and the condition is reported).
"""

from __future__ import annotations

from typing import Any, Union

from repro.intervals import Interval, as_interval
from repro.intervals import functions as ifn

from .tape import Node, Tape, require_tape

__all__ = ["ADouble", "IntervalAdjoint"]

_Operand = Union["ADouble", Interval, int, float]


def _coerce_const(value: Any, interval_mode: bool) -> Any:
    """Coerce a passive operand to the algebra of the active computation."""
    if isinstance(value, Interval):
        return value
    value = float(value)
    return Interval(value) if interval_mode else value


class ADouble:
    """A taped (interval-)adjoint scalar.

    Instances are immutable value wrappers; arithmetic produces new
    instances and appends nodes to the tape.  Construct inputs with
    :meth:`input` (registers an input node) and constants either through
    :meth:`constant` or by combining an :class:`ADouble` with plain
    numbers/intervals (which are folded into the operation without creating
    extra nodes, as a compiler folds literals into instructions).
    """

    __slots__ = ("value", "node", "tape")

    def __init__(self, value: Any, node: Node, tape: Tape):
        self.value = value
        self.node = node
        self.tape = tape

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def input(
        cls,
        value: Interval | float,
        label: str | None = None,
        tape: Tape | None = None,
    ) -> "ADouble":
        """Register an input variable (paper macro ``INPUT``, Eq. 1)."""
        tape = require_tape(tape)
        node = tape.record_input(value, label=label)
        return cls(value, node, tape)

    @classmethod
    def constant(
        cls, value: Interval | float, tape: Tape | None = None
    ) -> "ADouble":
        """Record an explicit constant node (e.g. an accumulator init)."""
        tape = require_tape(tape)
        node = tape.record("const", value, (), ())
        return cls(value, node, tape)

    @property
    def interval_mode(self) -> bool:
        """True when this value computes in interval arithmetic."""
        return isinstance(self.value, Interval)

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------
    def _coerce(self, value: Any) -> Any:
        """Coerce a passive operand to this value's algebra.

        Subclasses carrying other algebras (e.g. the batched
        :class:`repro.vec.vadouble.VADouble`) override this one hook and
        inherit all the arithmetic below.
        """
        return _coerce_const(value, self.interval_mode)

    def _make(
        self,
        op: str,
        value: Any,
        parents: tuple,
        partials: tuple,
        aux: Any = None,
    ) -> "ADouble":
        node = self.tape.record(op, value, parents, partials, aux=aux)
        return type(self)(value, node, self.tape)

    def record_unary(
        self, op: str, value: Any, partial: Any, aux: Any = None
    ) -> "ADouble":
        """Append a unary elementary function node (used by intrinsics)."""
        return self._make(op, value, (self.node.index,), (partial,), aux=aux)

    def _binary(
        self,
        op: str,
        other: _Operand,
        value_fn,
        partial_self_fn,
        partial_other_fn,
        reflected: bool = False,
    ) -> "ADouble":
        if isinstance(other, ADouble):
            if other.tape is not self.tape:
                raise ValueError("operands recorded on different tapes")
            a, b = (other, self) if reflected else (self, other)
            value = value_fn(a.value, b.value)
            return self._make(
                op,
                value,
                (a.node.index, b.node.index),
                (partial_self_fn(a.value, b.value), partial_other_fn(a.value, b.value)),
            )
        const = self._coerce(other)
        if reflected:
            value = value_fn(const, self.value)
            partial = partial_other_fn(const, self.value)
        else:
            value = value_fn(self.value, const)
            partial = partial_self_fn(self.value, const)
        # The folded constant is not always recoverable from value/partial
        # (add/sub/div); stash it so the replay engine can recompute the
        # node on fresh inputs.
        return self._make(
            op, value, (self.node.index,), (partial,), aux=(const, reflected)
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: _Operand) -> "ADouble":
        return self._binary(
            "add", other, lambda a, b: a + b, lambda a, b: 1.0, lambda a, b: 1.0
        )

    def __radd__(self, other: _Operand) -> "ADouble":
        return self.__add__(other)

    def __sub__(self, other: _Operand) -> "ADouble":
        return self._binary(
            "sub", other, lambda a, b: a - b, lambda a, b: 1.0, lambda a, b: -1.0
        )

    def __rsub__(self, other: _Operand) -> "ADouble":
        return self._binary(
            "sub",
            other,
            lambda a, b: a - b,
            lambda a, b: 1.0,
            lambda a, b: -1.0,
            reflected=True,
        )

    def __mul__(self, other: _Operand) -> "ADouble":
        if other is self:
            # Same-node square: each algebra's same-object product applies
            # its sharp square rule (Interval and Tangent both special-case
            # `x * x` on identity), avoiding the dependency-losing generic
            # product.
            value = self.value * self.value
            return self.record_unary("sqr", value, 2.0 * self.value)
        return self._binary(
            "mul", other, lambda a, b: a * b, lambda a, b: b, lambda a, b: a
        )

    def __rmul__(self, other: _Operand) -> "ADouble":
        return self.__mul__(other)

    def __truediv__(self, other: _Operand) -> "ADouble":
        return self._binary(
            "div",
            other,
            lambda a, b: a / b,
            lambda a, b: 1.0 / b,
            lambda a, b: -a / (b * b),
        )

    def __rtruediv__(self, other: _Operand) -> "ADouble":
        return self._binary(
            "div",
            other,
            lambda a, b: a / b,
            lambda a, b: 1.0 / b,
            lambda a, b: -a / (b * b),
            reflected=True,
        )

    def __neg__(self) -> "ADouble":
        return self.record_unary("neg", -self.value, -1.0)

    def __pos__(self) -> "ADouble":
        return self

    def __abs__(self) -> "ADouble":
        value = abs(self.value)
        if self.interval_mode:
            iv: Interval = self.value
            if iv.lo >= 0:
                partial: Any = 1.0
            elif iv.hi <= 0:
                partial = -1.0
            else:
                # |.| is not differentiable at 0; the enclosure of its
                # slopes over an interval spanning 0 is [-1, 1].
                partial = Interval(-1.0, 1.0)
        else:
            partial = 1.0 if self.value >= 0 else -1.0
        return self.record_unary("abs", value, partial)

    def __pow__(self, exponent: _Operand) -> "ADouble":
        if isinstance(exponent, ADouble):
            # General power via exp(e * log(b)) to keep partials elementary.
            from . import intrinsics as _in

            return _in.exp(exponent * _in.log(self))
        if isinstance(exponent, (int, float)) and float(exponent).is_integer():
            n = int(exponent)
            if n == 0:
                one = self._coerce(1.0)
                # x**0 == 1 with zero sensitivity to x; keep the data-flow
                # edge so the DynDFG still shows the dependence (Fig. 3).
                return self.record_unary("pow0", one, 0.0)
            # value ** n dispatches through each algebra's own __pow__
            # (sharp interval rule, Tangent second-order lane, floats).
            value = self.value**n
            partial = float(n) * self.value ** (n - 1)
            return self.record_unary(f"pow{n}", value, partial)
        from . import intrinsics as _in

        return _in.exp(float(exponent) * _in.log(self))

    def __rpow__(self, base: _Operand) -> "ADouble":
        from . import intrinsics as _in

        return _in.exp(self * _in.log(self._coerce(base)))

    # ------------------------------------------------------------------
    # Comparisons (interval semantics; ambiguous -> error)
    # ------------------------------------------------------------------
    def _cmp_operand(self, other: _Operand) -> Any:
        if isinstance(other, ADouble):
            return other.value
        return other

    def _guarded_cmp(self, op: str, other: _Operand, outcome: bool) -> bool:
        """Log a decided comparison on the tape (replay divergence check).

        Each guard pins one branch of the recorded straight-line trace:
        ``(op, left_index, right_index | Interval, outcome)``.  Replay
        re-evaluates the same comparison on fresh values and rejects the
        trace if the outcome flips (or turns ambiguous).
        """
        rhs: Any = (
            other.node.index
            if isinstance(other, ADouble)
            else as_interval(other)
        )
        self.tape.guards.append((op, self.node.index, rhs, outcome))
        return outcome

    def __lt__(self, other: _Operand) -> bool:
        if self.interval_mode:
            outcome = self.value < as_interval(self._cmp_operand(other))
            return self._guarded_cmp("lt", other, outcome)
        return self.value < self._cmp_operand(other)

    def __le__(self, other: _Operand) -> bool:
        if self.interval_mode:
            outcome = self.value <= as_interval(self._cmp_operand(other))
            return self._guarded_cmp("le", other, outcome)
        return self.value <= self._cmp_operand(other)

    def __gt__(self, other: _Operand) -> bool:
        if self.interval_mode:
            outcome = self.value > as_interval(self._cmp_operand(other))
            return self._guarded_cmp("gt", other, outcome)
        return self.value > self._cmp_operand(other)

    def __ge__(self, other: _Operand) -> bool:
        if self.interval_mode:
            outcome = self.value >= as_interval(self._cmp_operand(other))
            return self._guarded_cmp("ge", other, outcome)
        return self.value >= self._cmp_operand(other)

    # ------------------------------------------------------------------
    # Conversion / display
    # ------------------------------------------------------------------
    def to_double(self) -> float:
        """Midpoint (interval mode) or value — paper's ``toDouble()``."""
        if isinstance(self.value, Interval):
            return self.value.midpoint
        return float(self.value)

    def __repr__(self) -> str:
        return f"ADouble({self.value}, node=#{self.node.index})"


# Paper-facing alias: ADouble over Interval values *is* dco::ia1s::type.
IntervalAdjoint = ADouble
