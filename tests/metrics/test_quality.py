"""Tests for the quality metrics."""

import math

import numpy as np
import pytest

from repro.metrics import (
    aggregate_relative_error,
    max_relative_error,
    mean_absolute_error,
    mse,
    psnr,
    relative_error,
    rmse,
)


class TestMSEFamily:
    def test_known_mse(self):
        assert mse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(12.5)

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(math.sqrt(12.5))

    def test_identical_zero(self):
        assert mse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mae(self):
        assert mean_absolute_error([0.0, 0.0], [3.0, -4.0]) == pytest.approx(3.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse([], [])

    def test_2d_arrays(self):
        a = np.zeros((4, 4))
        b = np.ones((4, 4))
        assert mse(a, b) == 1.0


class TestPSNR:
    def test_identical_is_infinite(self):
        assert psnr([1.0, 2.0], [1.0, 2.0]) == math.inf

    def test_known_value(self):
        # MSE = 1 with peak 255: 10*log10(255^2) ≈ 48.13 dB.
        ref = np.zeros(100)
        test = np.zeros(100)
        test[:] = 1.0
        assert psnr(ref, test) == pytest.approx(48.13, abs=0.01)

    def test_custom_peak(self):
        ref, test = np.zeros(10), np.ones(10)
        assert psnr(ref, test, peak=1.0) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_error(self):
        ref = np.zeros(50)
        small = psnr(ref, ref + 0.5)
        big = psnr(ref, ref + 5.0)
        assert small > big


class TestRelativeError:
    def test_simple(self):
        assert relative_error([2.0], [2.2]) == pytest.approx(0.1)

    def test_epsilon_guards_zero(self):
        value = relative_error([0.0], [1e-6], epsilon=1.0)
        assert value == pytest.approx(1e-6)

    def test_max_relative_error(self):
        assert max_relative_error([1.0, 10.0], [1.1, 10.1]) == pytest.approx(0.1)

    def test_aggregate(self):
        assert aggregate_relative_error([1.0, 3.0], [1.5, 3.5]) == pytest.approx(
            1.0 / 4.0
        )

    def test_aggregate_zero_reference(self):
        assert aggregate_relative_error([0.0], [0.0]) == 0.0
        assert aggregate_relative_error([0.0], [1.0]) == math.inf

    def test_aggregate_stable_for_tiny_elements(self):
        ref = np.array([1e-12, 100.0])
        test = np.array([1e-6, 100.0])
        # Elementwise would explode; aggregate stays tiny.
        assert aggregate_relative_error(ref, test) < 1e-7
