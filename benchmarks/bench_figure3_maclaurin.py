"""Figure 3: Maclaurin-series significance analysis benchmark.

Regenerates the per-term significances of Figure 3b and times the full
dco/scorpio pipeline (profile run + reverse sweep + simplify + variance
scan) on the running example.
"""

import pytest

from repro.experiments import figure3
from repro.kernels.maclaurin import analyse_maclaurin

PAPER_VALUES = {
    "term0": 0.0,
    "term1": 0.259,
    "term2": 0.254,
    "term3": 0.245,
    "term4": 0.241,
}


def test_figure3_analysis(benchmark):
    result = benchmark(analyse_maclaurin)

    assert result.partition_level == 1
    for term, expected in PAPER_VALUES.items():
        assert result.normalised[term] == pytest.approx(expected, abs=0.012)
    benchmark.extra_info["measured"] = {
        k: round(v, 4) for k, v in sorted(result.normalised.items())
    }
    benchmark.extra_info["paper"] = PAPER_VALUES


def test_figure3_full_rendering(benchmark):
    fig = benchmark(figure3)
    assert "term1" in fig.to_text()
    assert fig.simplified_dot.count("->") < fig.raw_dot.count("->")


def test_figure3_larger_series(benchmark):
    """Scaling check: the monotone decay holds for longer series too."""
    result = benchmark(analyse_maclaurin, n=24)
    values = [result.normalised[f"term{i}"] for i in range(1, 24)]
    assert all(a > b for a, b in zip(values, values[1:]))
