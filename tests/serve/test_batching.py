"""Micro-batched /analyse (:mod:`repro.serve.batching`) + warm starts.

The contract under test: coalescing concurrent requests into one
lane-batched sweep changes *nothing* about the responses — N parallel
batched answers are byte-identical to the same N requests issued
sequentially against an unbatched server (and to in-process analysis) —
and a server restarted over a populated tape store serves its first
request as a replay.
"""

import asyncio
import threading

import pytest

from repro.scorpio import TraceCache
from repro.scorpio.serialize import report_to_json
from repro.serve import ServiceConfig, ServiceThread, default_registry
from repro.serve.batching import KernelBatcher
from repro.serve.kernels import parse_intervals

KERNELS = ("dct", "sobel", "blackscholes", "fisheye", "nbody")


def _inputs_for(entry, i: int):
    """Request i's input ranges: the kernel defaults, nudged per i."""
    return [
        [iv.lo - 0.001 * i, iv.hi + 0.001 * i]
        for iv in parse_intervals(None, entry)
    ]


def _parallel(service, kernel, inputs_list):
    """One thread per request, all released together; ordered results."""
    n = len(inputs_list)
    barrier = threading.Barrier(n)
    results = [None] * n
    errors = []

    def worker(i):
        try:
            with service.client() as client:
                barrier.wait()
                results[i] = client.analyse_detail(kernel, inputs_list[i])
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestBatchedByteIdentity:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_parallel_batched_equals_sequential_unbatched(self, kernel):
        registry = default_registry()
        entry = registry[kernel]
        n = 4
        inputs_list = [_inputs_for(entry, i) for i in range(n)]

        # Reference: in-process analysis through a plain TraceCache —
        # the same bytes an unbatched server would answer.
        cache = TraceCache()
        expect = []
        for inputs in inputs_list:
            report, _ = cache.analyse_outcome(
                entry.cache_key,
                entry.recorder,
                parse_intervals(inputs, entry),
                simplify=entry.simplify,
            )
            expect.append(report_to_json(report).encode("utf-8"))

        with ServiceThread() as service:
            # Warm the trace so every parallel request is a replay lane.
            with service.client() as client:
                client.analyse(kernel, inputs_list[0])
            results = _parallel(service, kernel, inputs_list)

        for i, (body, outcome, (size, index), trace_id) in enumerate(results):
            assert body == expect[i], f"lane {i} not byte-identical"
            assert outcome == "replay"
            assert 1 <= size <= 16 and 0 <= index < size
            assert len(trace_id) == 32

    def test_concurrent_requests_coalesce(self):
        registry = default_registry()
        entry = registry["sobel"]
        n = 8
        inputs_list = [_inputs_for(entry, 0)] * n
        with ServiceThread() as service:
            with service.client() as client:
                client.analyse("sobel", inputs_list[0])
            results = _parallel(service, "sobel", inputs_list)
        sizes = [size for _, _, (size, _), _ in results]
        assert max(sizes) > 1, f"nothing coalesced: {sizes}"
        indices = [
            (size, index) for _, _, (size, index), _ in results if size > 1
        ]
        # Lane indices within one batch size are distinct per batch.
        assert all(0 <= index < size for size, index in indices)


class TestConfigSurface:
    def test_healthz_reports_batching_config(self, tmp_path):
        config = ServiceConfig(
            port=0,
            batch_window_ms=1.5,
            max_batch=7,
            store_dir=str(tmp_path),
        )
        with ServiceThread(config=config) as service:
            with service.client() as client:
                health = client.healthz()
        assert health["batch_window_ms"] == 1.5
        assert health["max_batch"] == 7
        assert health["store_dir"] == str(tmp_path)

    def test_max_batch_one_disables_batching(self):
        with ServiceThread(
            config=ServiceConfig(port=0, max_batch=1)
        ) as service:
            with service.client() as client:
                _, _, batch, _ = client.analyse_detail("blackscholes")
                assert batch == (1, 0)
                _, _, batch, _ = client.analyse_detail("blackscholes")
                assert batch == (1, 0)

    def test_store_dir_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TAPE_DIR", str(tmp_path))
        with ServiceThread() as service:
            assert service.service.config.store_dir == str(tmp_path)
            with service.client() as client:
                assert client.healthz()["store_dir"] == str(tmp_path)


class TestWarmStart:
    def test_restart_serves_first_request_as_replay(self, tmp_path):
        config = lambda: ServiceConfig(port=0, store_dir=str(tmp_path))
        with ServiceThread(config=config()) as service:
            with service.client() as client:
                body, outcome, _, _ = client.analyse_detail("blackscholes")
                assert outcome == "record"

        # A brand-new server over the same store: no recording at all.
        with ServiceThread(config=config()) as service:
            with service.client() as client:
                body2, outcome2, _, _ = client.analyse_detail("blackscholes")
            stats = service.service.caches["blackscholes"].stats()
        assert outcome2 == "replay"
        assert body2 == body
        assert stats["records"] == 0 and stats["replays"] == 1


class TestKernelBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_coalesces_up_to_max_batch(self):
        calls = []

        async def main():
            async def dispatch(batch):
                calls.append(len(batch))
                return [("ok", item) for item in batch]

            batcher = KernelBatcher(
                window=0.01, max_batch=3, dispatch=dispatch
            )
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(7))
            )
            return results

        results = self._run(main())
        assert [item[1] for item, _, _ in results] == list(range(7))
        assert all(1 <= size <= 3 and 0 <= index < size for _, size, index in results)
        assert max(calls) <= 3 and sum(calls) == 7

    def test_per_request_error_isolation(self):
        async def main():
            async def dispatch(batch):
                return [
                    ("err", ValueError("bad lane"))
                    if item == "poison"
                    else ("ok", item)
                    for item in batch
                ]

            batcher = KernelBatcher(
                window=0.005, max_batch=8, dispatch=dispatch
            )
            return await asyncio.gather(
                batcher.submit("a"),
                batcher.submit("poison"),
                batcher.submit("b"),
            )

        a, poison, b = self._run(main())
        assert a[0] == ("ok", "a") and b[0] == ("ok", "b")
        assert poison[0][0] == "err"
        assert isinstance(poison[0][1], ValueError)

    def test_dispatch_exception_fans_out(self):
        async def main():
            async def dispatch(batch):
                raise RuntimeError("sweep exploded")

            batcher = KernelBatcher(
                window=0.005, max_batch=8, dispatch=dispatch
            )
            results = await asyncio.gather(
                batcher.submit(1),
                batcher.submit(2),
                return_exceptions=True,
            )
            return results

        results = self._run(main())
        assert all(
            isinstance(r, RuntimeError) and "sweep exploded" in str(r)
            for r in results
        )

    def test_wrong_item_count_is_an_error(self):
        async def main():
            async def dispatch(batch):
                return [("ok", 1)] * (len(batch) + 1)

            batcher = KernelBatcher(window=0.0, max_batch=4, dispatch=dispatch)
            return await asyncio.gather(
                batcher.submit(1), return_exceptions=True
            )

        [result] = self._run(main())
        assert isinstance(result, RuntimeError)

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            KernelBatcher(window=0.0, max_batch=0, dispatch=None)
