"""Reproduction of "Towards Automatic Significance Analysis for Approximate
Computing" (CGO 2016).

Subpackages:

* :mod:`repro.intervals` — rigorous interval arithmetic.
* :mod:`repro.ad`        — tape-based algorithmic differentiation.
* :mod:`repro.scorpio`   — the significance-analysis framework (DynDFG,
  Eq. 11 significance, Algorithm 1 workflow).
* :mod:`repro.runtime`   — significance-aware task runtime with the
  ``taskwait(ratio=…)`` quality knob and energy accounting.
* :mod:`repro.perforation` — loop-perforation baseline.
* :mod:`repro.fastmath`  — fast approximate math (fastapprox-style).
* :mod:`repro.metrics`   — PSNR / relative-error quality metrics.
* :mod:`repro.images`    — synthetic images and PGM/PPM I/O.
* :mod:`repro.kernels`   — the paper's benchmarks (Sobel, DCT, Fisheye,
  N-Body, BlackScholes, Maclaurin).
* :mod:`repro.experiments` — drivers regenerating every table and figure.
* :mod:`repro.obs`       — structured tracing, metrics and profiling
  hooks across the pipeline (``repro profile``).
* :mod:`repro.serve`     — significance-analysis-as-a-service: asyncio
  HTTP/JSON server over the trace cache (``repro serve``).
"""

__version__ = "1.0.0"

__all__ = [
    "intervals",
    "ad",
    "scorpio",
    "runtime",
    "perforation",
    "fastmath",
    "metrics",
    "images",
    "kernels",
    "experiments",
    "obs",
    "serve",
]
