"""Analysis-cost benchmark: what does a dco/scorpio profile run cost?

Not a paper figure — the engineering number behind the paper's "single
analysis run" pitch: the slowdown of an interval-adjoint taped run over a
plain float evaluation, and of the full ANALYSE pipeline on the Maclaurin
example.  The absolute factor is large in pure Python (every elementary
op becomes an object + tape node), but it is paid once offline per
kernel, not at execution time.
"""

import pytest

from repro.kernels.maclaurin import analyse_maclaurin, maclaurin_series

N = 24


def test_plain_float_evaluation(benchmark):
    value = benchmark(maclaurin_series, 0.49, N)
    assert value == pytest.approx((1 - 0.49**N) / (1 - 0.49))


def test_full_analysis_pipeline(benchmark):
    result = benchmark(analyse_maclaurin, 0.49, 1.0, N)
    assert result.partition_level == 1
    benchmark.extra_info["note"] = (
        "profile run + reverse sweep + simplify + variance scan, "
        f"n={N} terms"
    )
