"""Legacy setup shim: this environment's setuptools predates reliable
PEP 660 editable installs (no `wheel` available offline), so `pip install
-e . --no-use-pep517 --no-build-isolation` uses this file. All metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
