"""Fast approximate math — the paper's fastapprox [22] substitute.

BlackScholes (Section 4.1.5) approximates its least-significant blocks with
"less accurate but faster implementations of mathematical functions such as
exp and sqrt" from Mineiro's fastapprox library.  These are the classic
float32 bit-twiddling approximations, reimplemented here both as scalars
(struct-based) and as NumPy-vectorised versions for the kernels.

Accuracy is a few percent relative error over moderate ranges — exactly
the "cheap but rough" profile the approximate task versions need.  The
abstract cost of each function (for the energy model) is a small fraction
of its accurate counterpart; see ``COSTS``.
"""

from __future__ import annotations

import math
import struct

import numpy as np

__all__ = [
    "fast_log2",
    "fast_log",
    "fast_pow2",
    "fast_exp",
    "fast_pow",
    "fast_sqrt",
    "fast_rsqrt",
    "fast_erf",
    "fast_cndf",
    "logistic_cndf",
    "np_logistic_cndf",
    "fast_sin",
    "fast_cos",
    "np_fast_exp",
    "np_fast_log",
    "np_fast_sqrt",
    "np_fast_cndf",
    "COSTS",
]

# Abstract op-cost of each approximate function relative to one scalar
# multiply (the accurate libm versions cost ~20-50 multiplies' worth).
COSTS = {
    "fast_exp": 4.0,
    "fast_log": 4.0,
    "fast_pow": 8.0,
    "fast_sqrt": 3.0,
    "fast_rsqrt": 3.0,
    "fast_erf": 6.0,
    "fast_cndf": 8.0,
    "fast_sin": 4.0,
    "fast_cos": 4.0,
    "exp": 40.0,
    "log": 40.0,
    "pow": 80.0,
    "sqrt": 20.0,
    "erf": 60.0,
    "cndf": 80.0,
    "sin": 40.0,
    "cos": 40.0,
}


def _float_to_bits(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def _bits_to_float(i: int) -> float:
    return struct.unpack("<f", struct.pack("<I", i & 0xFFFFFFFF))[0]


def fast_log2(x: float) -> float:
    """Mineiro's fastlog2: exponent extraction + mantissa correction."""
    if x <= 0.0:
        raise ValueError(f"fast_log2 domain error: {x}")
    bits = _float_to_bits(x)
    mantissa_bits = _bits_to_float((bits & 0x007FFFFF) | 0x3F000000)
    y = bits * 1.1920928955078125e-7
    return (
        y
        - 124.22551499
        - 1.498030302 * mantissa_bits
        - 1.72587999 / (0.3520887068 + mantissa_bits)
    )


def fast_log(x: float) -> float:
    """Natural log via :func:`fast_log2`."""
    return 0.69314718 * fast_log2(x)


def fast_pow2(p: float) -> float:
    """Mineiro's fastpow2: bit-trick 2**p with mantissa correction."""
    offset = 1.0 if p < 0 else 0.0
    clipp = -126.0 if p < -126.0 else p
    w = int(clipp)
    z = clipp - w + offset
    bits = int(
        (1 << 23)
        * (
            clipp
            + 121.2740575
            + 27.7280233 / (4.84252568 - z)
            - 1.49012907 * z
        )
    )
    return _bits_to_float(bits)


def fast_exp(x: float) -> float:
    """exp(x) ≈ 2**(x·log2 e)."""
    return fast_pow2(1.442695040 * x)


def fast_pow(x: float, p: float) -> float:
    """x**p for positive x via pow2(p · log2 x)."""
    if x <= 0.0:
        raise ValueError(f"fast_pow domain error: base {x}")
    return fast_pow2(p * fast_log2(x))


def fast_sqrt(x: float) -> float:
    """Single-Newton-step bit-hack square root."""
    if x < 0.0:
        raise ValueError(f"fast_sqrt domain error: {x}")
    if x == 0.0:
        return 0.0
    return x * fast_rsqrt(x)


def fast_rsqrt(x: float) -> float:
    """Quake-style inverse square root (one Newton refinement)."""
    if x <= 0.0:
        raise ValueError(f"fast_rsqrt domain error: {x}")
    i = _float_to_bits(x)
    i = 0x5F3759DF - (i >> 1)
    y = _bits_to_float(i)
    return y * (1.5 - 0.5 * x * y * y)


def fast_erf(x: float) -> float:
    """Abramowitz-Stegun 7.1.27-style rational erf (|err| < 3e-3)."""
    sign = 1.0 if x >= 0 else -1.0
    ax = abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t
        * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * fast_exp(-ax * ax))


def fast_cndf(x: float) -> float:
    """Approximate standard normal CDF via :func:`fast_erf`."""
    return 0.5 * (1.0 + fast_erf(x * 0.7071067811865476))


def logistic_cndf(x: float) -> float:
    """Logistic approximation of the normal CDF: 1/(1+e^{-1.702x}).

    The classic item-response-theory constant 1.702 gives |err| < 0.0095 —
    much rougher than :func:`fast_cndf`, and the right accuracy class for
    a "least significant block" approximation (one fast_exp per call).
    """
    return 1.0 / (1.0 + fast_exp(-1.702 * x))


def np_logistic_cndf(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`logistic_cndf`."""
    return 1.0 / (1.0 + np_fast_exp(-1.702 * np.asarray(x, dtype=np.float64)))


_FOUR_OVER_PI = 4.0 / math.pi
_FOUR_OVER_PI2 = 4.0 / (math.pi * math.pi)


def fast_sin(x: float) -> float:
    """Parabolic sine approximation on wrapped input (|err| ≲ 1e-3)."""
    # Wrap to [-pi, pi).
    x = (x + math.pi) % (2.0 * math.pi) - math.pi
    y = _FOUR_OVER_PI * x - _FOUR_OVER_PI2 * x * abs(x)
    # Extra precision pass (standard "P = 0.225" refinement).
    return 0.775 * y + 0.225 * y * abs(y)


def fast_cos(x: float) -> float:
    """Cosine via shifted :func:`fast_sin`."""
    return fast_sin(x + 0.5 * math.pi)


# ----------------------------------------------------------------------
# NumPy-vectorised versions (used by the execution-scale kernels)
# ----------------------------------------------------------------------
def np_fast_exp(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`fast_exp` (float32 bit trick, returns float64)."""
    p = 1.442695040 * np.asarray(x, dtype=np.float64)
    offset = np.where(p < 0, 1.0, 0.0)
    clipp = np.maximum(p, -126.0)
    # Match the scalar version: truncation toward zero, not floor.
    w = np.trunc(clipp)
    z = clipp - w + offset
    bits = (
        (1 << 23)
        * (clipp + 121.2740575 + 27.7280233 / (4.84252568 - z) - 1.49012907 * z)
    ).astype(np.int64)
    return (
        bits.clip(0, 0xFFFFFFFF)
        .astype(np.uint32)
        .view(np.float32)
        .astype(np.float64)
    )


def np_fast_log(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`fast_log`."""
    xf = np.asarray(x, dtype=np.float32)
    if np.any(xf <= 0):
        raise ValueError("np_fast_log domain error: non-positive input")
    bits = xf.view(np.uint32).astype(np.float64)
    mantissa = ((xf.view(np.uint32) & 0x007FFFFF) | 0x3F000000).view(
        np.float32
    ).astype(np.float64)
    y = bits * 1.1920928955078125e-7
    log2_val = (
        y
        - 124.22551499
        - 1.498030302 * mantissa
        - 1.72587999 / (0.3520887068 + mantissa)
    )
    return 0.69314718 * log2_val


def np_fast_sqrt(x: np.ndarray) -> np.ndarray:
    """Vectorised bit-hack sqrt with one Newton step."""
    xf = np.asarray(x, dtype=np.float32)
    if np.any(xf < 0):
        raise ValueError("np_fast_sqrt domain error: negative input")
    i = xf.view(np.uint32)
    y = (np.uint32(0x5F3759DF) - (i >> np.uint32(1))).view(np.float32).astype(
        np.float64
    )
    xd = xf.astype(np.float64)
    y = y * (1.5 - 0.5 * xd * y * y)
    out = xd * y
    return np.where(xd == 0.0, 0.0, out)


def np_fast_cndf(x: np.ndarray) -> np.ndarray:
    """Vectorised approximate normal CDF."""
    xd = np.asarray(x, dtype=np.float64) * 0.7071067811865476
    sign = np.where(xd >= 0, 1.0, -1.0)
    ax = np.abs(xd)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t
        * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    erf_val = sign * (1.0 - poly * np_fast_exp(-ax * ax))
    return 0.5 * (1.0 + erf_val)
