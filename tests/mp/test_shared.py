"""Shared-memory arrays and frozen tapes: lifecycle, pickling, cleanup."""

import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.intervals import Interval
from repro.mp import SharedArray, SharedTape, live_segments
from repro.scorpio import CachedTrace


def make_trace():
    from repro.kernels.blackscholes.analysis import _record_option

    ivs = [
        Interval.centered(p, 0.02 * p)
        for p in (100.0, 105.0, 0.03, 0.25, 1.0)
    ]
    return CachedTrace(_record_option(ivs), simplify=False)


class TestSharedArray:
    def test_roundtrip_bitwise(self):
        data = np.random.default_rng(0).normal(size=(7, 13))
        with SharedArray.create(data) as handle:
            view = handle.view()
            assert view.tobytes() == data.tobytes()
            assert view.shape == data.shape
            assert view.dtype == data.dtype

    def test_readonly_view(self):
        with SharedArray.create(np.zeros(4)) as handle:
            view = handle.view()
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_writable_empty_buffer(self):
        with SharedArray.empty((3, 5)) as handle:
            handle.view()[:] = 7.0
            assert np.all(handle.copy() == 7.0)

    def test_pickle_reattaches_same_segment(self):
        data = np.arange(12, dtype=np.float64)
        with SharedArray.create(data) as handle:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone.name == handle.name
            assert clone.view().tobytes() == data.tobytes()
            clone.close()

    def test_copy_survives_close(self):
        handle = SharedArray.create(np.ones(5))
        copy = handle.copy()
        handle.close()
        assert np.all(copy == 1.0)

    def test_close_unlinks_owned_segment(self):
        handle = SharedArray.create(np.ones(3))
        name = handle.name
        assert name in live_segments()
        handle.close()
        assert name not in live_segments()


class TestSharedTape:
    def test_freeze_attach_bitwise(self):
        trace = make_trace()
        ct = trace.ct
        rng = np.random.default_rng(1)
        L = 32
        centre = np.array([100.0, 105.0, 0.03, 0.25, 1.0])[:, None]
        jitter = 1.0 + 0.01 * rng.normal(size=(5, L))
        lo = centre * jitter * 0.98
        hi = centre * jitter * 1.02
        want = ct.forward_lanes(lo, hi)
        with SharedTape.freeze(ct) as shared:
            attached = shared.attach()
            got = attached.forward_lanes(lo, hi)
            assert got.value_lo.tobytes() == want.value_lo.tobytes()
            assert got.value_hi.tobytes() == want.value_hi.tobytes()
            a_want = want.adjoint({trace.output_ids[0]: 1.0})
            a_got = got.adjoint({trace.output_ids[0]: 1.0})
            assert a_got[0].tobytes() == a_want[0].tobytes()
            assert a_got[1].tobytes() == a_want[1].tobytes()

    def test_pickle_ships_handles_not_arrays(self):
        trace = make_trace()
        with SharedTape.freeze(trace.ct) as shared:
            blob = pickle.dumps(shared)
            # The frozen tape travels by segment name, not by value: the
            # pickle must stay far below the raw column payload.
            payload = sum(a.view().nbytes for a in shared.arrays.values())
            assert len(blob) < max(2048, payload)
            clone = pickle.loads(blob)
            assert clone.arrays["opcodes"].name == shared.arrays["opcodes"].name
            clone.close()

    def test_close_releases_all_segments(self):
        trace = make_trace()
        shared = SharedTape.freeze(trace.ct)
        assert live_segments()
        shared.close()
        assert live_segments() == []

    def test_meta_passthrough(self):
        trace = make_trace()
        with SharedTape.freeze(trace.ct, flavour="test") as shared:
            assert shared.meta["flavour"] == "test"


class TestCachedTraceShare:
    def test_share_carries_trace_identity(self):
        trace = make_trace()
        with trace.share() as shared:
            assert tuple(shared.meta["output_ids"]) == tuple(trace.output_ids)
            assert tuple(shared.meta["input_ids"]) == tuple(trace.input_ids)

    def test_cached_trace_pickle_refuses(self):
        trace = make_trace()
        with pytest.raises(TypeError, match="share"):
            pickle.dumps(trace)

    def test_trace_cache_pickle_refuses(self):
        from repro.scorpio import TraceCache

        with pytest.raises(TypeError):
            pickle.dumps(TraceCache())


class TestInterpreterExitCleanup:
    def test_atexit_unlinks_leaked_segments(self):
        """A process that exits without closing its segments must still
        unlink them (the atexit hook), so nothing leaks into /dev/shm."""
        code = (
            "import sys; sys.path.insert(0, 'src');"
            "import numpy as np;"
            "from repro.mp import SharedArray;"
            "h = SharedArray.create(np.ones(64));"
            "print(h.name)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            cwd="/root/repo",
        )
        name = out.stdout.strip()
        assert name
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_unlink_all_is_idempotent(self):
        from repro.mp import unlink_all

        SharedArray.create(np.ones(3))
        unlink_all()
        unlink_all()
        assert live_segments() == []
