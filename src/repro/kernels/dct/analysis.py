"""Significance analysis of the DCT round-trip (Section 4.1.2, Figure 4).

Per sampled 8x8 block: register the 64 pixels as inputs (±half gray level
quantisation uncertainty), run DCT → quantise → de-quantise → IDCT in
interval-adjoint mode, tag every frequency coefficient as an intermediate
and register all 64 reconstructed pixels as outputs (vector output: one
sweep accumulates ``S = Σ_pixels S_pixel``).

The per-coefficient significances, averaged over blocks and normalised,
form the 8x8 map of Figure 4: the DC corner is the most significant and
significance falls in a wave-like pattern along the zig-zag diagonal —
matching image/video-compression expert wisdom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.intervals import Interval
from repro.scorpio import Analysis, TraceCache, replay_enabled

from .sequential import (
    BLOCK,
    blockify,
    dct_block,
    dequantise_block,
    idct_block,
    quantise_block,
    zigzag_order,
)

__all__ = ["DctAnalysis", "analyse_dct_block", "analyse_dct"]


@dataclass
class DctAnalysis:
    """Figure 4 data."""

    significance_map: np.ndarray  # (8, 8), normalised to max 1
    per_block_maps: list[np.ndarray]
    samples: int

    def zigzag_profile(self) -> list[float]:
        """Significances read out in zig-zag order (should tend downward)."""
        return [float(self.significance_map[v, u]) for v, u in zigzag_order()]

    def diagonal_means(self) -> list[float]:
        """Mean significance per anti-diagonal d = v+u (15 values)."""
        means = []
        for d in range(2 * BLOCK - 1):
            cells = [
                self.significance_map[v, d - v]
                for v in range(BLOCK)
                if 0 <= d - v < BLOCK
            ]
            means.append(float(np.mean(cells)))
        return means


def _record_dct_block(ivs) -> Analysis:
    """Record one DCT round-trip over 64 pixel intervals (row-major)."""
    an = Analysis()
    with an:
        it = iter(ivs)
        pixels = [
            [an.input(next(it), name=f"p_{y}_{x}") for x in range(BLOCK)]
            for y in range(BLOCK)
        ]
        coeffs = dct_block(pixels)
        for v in range(BLOCK):
            for u in range(BLOCK):
                an.intermediate(coeffs[v][u], f"c_{v}_{u}")
        reconstructed = idct_block(dequantise_block(quantise_block(coeffs)))
        for y in range(BLOCK):
            for x in range(BLOCK):
                an.output(reconstructed[y][x], name=f"out_{y}_{x}")
    return an


def analyse_dct_block(
    block: np.ndarray,
    pixel_uncertainty: float = 0.5,
    compiled: bool = False,
    cache: TraceCache | None = None,
) -> np.ndarray:
    """Raw (unnormalised) 8x8 coefficient significance map of one block.

    With a ``cache``, the block is analysed by replaying the shared DCT
    trace (recorded once per cache) on this block's pixel intervals —
    bit-identical to recording it from scratch.
    """
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected 8x8 block, got {block.shape}")

    ivs = [
        Interval.centered(float(block[y, x]), pixel_uncertainty)
        for y in range(BLOCK)
        for x in range(BLOCK)
    ]
    if cache is not None:
        report = cache.analyse(
            ("dct_block",), _record_dct_block, ivs, simplify=False
        )
    else:
        an = _record_dct_block(ivs)
        report = an.analyse(simplify=False, compiled=compiled)

    sigs = report.labelled_significances()
    result = np.zeros((BLOCK, BLOCK), dtype=np.float64)
    for v in range(BLOCK):
        for u in range(BLOCK):
            result[v, u] = sigs[f"c_{v}_{u}"]
    return result


def analyse_dct(
    image: np.ndarray,
    samples: int = 6,
    pixel_uncertainty: float = 0.5,
    seed: int = 9,
    compiled: bool = False,
    replay: bool | None = None,
) -> DctAnalysis:
    """Figure 4: averaged, max-normalised coefficient significance map.

    ``replay`` (default: the module replay setting) records the DCT trace
    on the first sampled block and replays it on the rest — every block is
    the same straight-line code, so only the input intervals change.
    """
    blocks = blockify(image)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(blocks), size=min(samples, len(blocks)), replace=False)
    cache = TraceCache() if replay_enabled(replay) else None
    maps = [
        analyse_dct_block(
            blocks[i],
            pixel_uncertainty=pixel_uncertainty,
            compiled=compiled,
            cache=cache,
        )
        for i in chosen
    ]
    mean_map = np.mean(maps, axis=0)
    peak = mean_map.max()
    if peak > 0:
        mean_map = mean_map / peak
    return DctAnalysis(
        significance_map=mean_map, per_block_maps=maps, samples=len(maps)
    )
