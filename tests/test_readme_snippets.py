"""The README's code snippets must keep working verbatim."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_has_python_snippets(self):
        assert len(python_blocks()) >= 2

    def test_snippets_execute(self, capsys):
        namespace: dict = {}
        for block in python_blocks():
            exec(compile(block, "<README>", "exec"), namespace)
        out = capsys.readouterr().out
        assert "term1" in out  # the analysis report was printed

    def test_quickstart_numbers(self):
        # Re-run the quickstart flow and assert the documented behaviour.
        namespace: dict = {}
        for block in python_blocks():
            exec(compile(block, "<README>", "exec"), namespace)
        report = namespace["report"]
        normalised = report.normalised_significances()
        terms = {k: v for k, v in normalised.items() if k.startswith("term")}
        assert terms["term0"] == pytest.approx(0.0, abs=1e-9)
        assert max(terms, key=terms.get) == "term1"

    def test_mentioned_files_exist(self):
        text = README.read_text(encoding="utf-8")
        root = README.parent
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/THEORY.md", "docs/BENCHMARKS.md"):
            assert name in text
            assert (root / name).exists()
        for example in re.findall(r"`(\w+\.py)` ", text):
            assert (root / "examples" / example).exists(), example
