"""Task abstractions for the significance-aware programming model.

The paper extends OpenMP tasks with ``significance()``, ``approxfun()``,
``in()/out()`` and ``label()`` clauses (Section 3.2, Listing 7).  A
:class:`Task` is the Python counterpart: a callable plus its approximate
alternative, a significance in ``[0, 1]``, and an abstract *work* measure
consumed by the energy model (see :mod:`repro.runtime.energy`).

Execution modes:

* ``ACCURATE`` — run ``fn``.
* ``APPROXIMATE`` — run ``approx_fn`` (the light-weight version).
* ``DROPPED`` — skip entirely (tasks without an ``approx_fn`` that fall
  below the ratio threshold; Sobel's B/C convolution parts use this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ExecutionMode", "Task", "TaskResult"]


class ExecutionMode(enum.Enum):
    """How the scheduler decided to run a task."""

    ACCURATE = "accurate"
    APPROXIMATE = "approximate"
    DROPPED = "dropped"


@dataclass
class Task:
    """One unit of significance-tagged work.

    Attributes:
        fn: accurate implementation.
        args/kwargs: call arguments (shared for both versions — the paper's
            ``in()``/``out()`` clauses; output typically lands in a shared
            array passed via ``args``).
        significance: contribution to output quality, in ``[0, 1]``.
            ``1.0`` forces accurate execution at any ratio (Sobel's A
            tasks).
        approx_fn: optional light-weight version (``approxfun()`` clause).
        label: task-group identifier (``label()`` clause).
        work: abstract operation count of the accurate version (energy
            model input).
        approx_work: abstract operation count of the approximate version.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    significance: float = 1.0
    approx_fn: Callable[..., Any] | None = None
    label: str = "default"
    work: float = 1.0
    approx_work: float = 0.0
    task_id: int = -1

    def __post_init__(self) -> None:
        if not 0.0 <= self.significance <= 1.0:
            raise ValueError(
                f"significance must lie in [0, 1], got {self.significance}"
            )
        if self.work < 0 or self.approx_work < 0:
            raise ValueError("work measures must be non-negative")

    def run(self, mode: ExecutionMode) -> Any:
        """Execute in the given mode; DROPPED returns ``None``."""
        if mode is ExecutionMode.ACCURATE:
            return self.fn(*self.args, **self.kwargs)
        if mode is ExecutionMode.APPROXIMATE:
            if self.approx_fn is None:
                raise ValueError(
                    f"task {self.task_id} has no approximate version"
                )
            return self.approx_fn(*self.args, **self.kwargs)
        return None

    def executed_work(self, mode: ExecutionMode) -> float:
        """Abstract work actually performed under ``mode``."""
        if mode is ExecutionMode.ACCURATE:
            return self.work
        if mode is ExecutionMode.APPROXIMATE:
            return self.approx_work
        return 0.0


@dataclass
class TaskResult:
    """Outcome of one task execution."""

    task: Task
    mode: ExecutionMode
    value: Any
    elapsed_seconds: float

    @property
    def was_accurate(self) -> bool:
        """True when the accurate version ran."""
        return self.mode is ExecutionMode.ACCURATE
