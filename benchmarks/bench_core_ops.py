"""Microbenchmarks of the analysis substrate itself.

Not a paper figure — engineering numbers for the README: cost of interval
arithmetic, of taping, and of the reverse sweeps, so users can size their
profile runs.
"""

import time

import pytest
from record import record_value

from repro.ad import ADouble, CompiledTape, Tape
from repro.ad import intrinsics as op
from repro.intervals import Interval, rounded_mode


def paper_fn(x):
    return op.cos(op.exp(op.sin(x) + x) - x)


def test_interval_arithmetic_kernel(benchmark):
    a = Interval(1.0, 2.0)
    b = Interval(-0.5, 0.7)

    def body():
        total = a
        for _ in range(100):
            total = total * b + a / 3.0 - b
        return total

    result = benchmark(body)
    assert result.lo <= result.hi
    t0 = time.perf_counter()
    body()
    record_value(
        "core.interval_kernel_seconds", time.perf_counter() - t0, ops=300
    )


def test_interval_arithmetic_unrounded(benchmark):
    a = Interval(1.0, 2.0)
    b = Interval(-0.5, 0.7)

    def body():
        with rounded_mode(False):
            total = a
            for _ in range(100):
                total = total * b + a / 3.0 - b
            return total

    result = benchmark(body)
    assert result.lo <= result.hi


def test_tape_recording(benchmark):
    def record():
        with Tape() as tape:
            x = ADouble.input(Interval(0.2, 0.4), tape=tape)
            y = x
            for _ in range(50):
                y = paper_fn(y)
        return tape

    tape = benchmark(record)
    assert len(tape) == 1 + 50 * 5


def test_adjoint_sweep(benchmark):
    with Tape() as tape:
        x = ADouble.input(Interval(0.2, 0.4), tape=tape)
        y = x
        for _ in range(50):
            y = paper_fn(y)

    def sweep():
        return tape.adjoint({y.node.index: Interval(1.0)})

    adjoints = benchmark(sweep)
    assert isinstance(adjoints[x.node.index], Interval)


def test_compiled_adjoint_sweep(benchmark):
    """The frozen-tape sweep on the same 251-node chain as above."""
    with Tape() as tape:
        x = ADouble.input(Interval(0.2, 0.4), tape=tape)
        y = x
        for _ in range(50):
            y = paper_fn(y)

    ct = CompiledTape(tape)

    def sweep():
        return ct.adjoint({y.node.index: 1.0})

    lo, hi = benchmark(sweep)
    assert lo.shape == (len(tape),)
    ref = tape.adjoint({y.node.index: Interval(1.0)})
    assert lo[x.node.index] == ref[x.node.index].lo


def test_vector_adjoint_sweep(benchmark):
    with Tape() as tape:
        x = ADouble.input(Interval(0.2, 0.4), tape=tape)
        outputs = [paper_fn(x * float(k)) for k in range(1, 17)]

    indices = [o.node.index for o in outputs]

    def sweep():
        return tape.adjoint_vector(indices)

    lo, hi = benchmark(sweep)
    assert lo.shape == (len(tape), 16)


def test_forward_replay(benchmark):
    """Re-evaluating the frozen trace on new inputs vs re-recording it.

    Recording cost is the number `Tape.record`'s hot-path cleanup (bound
    locals, no tuple re-wrapping) shaves a few percent off — see
    ``test_tape_recording`` above for the recording side.  Replay removes
    that cost class entirely: the same 251-node chain re-evaluates as a
    handful of NumPy sweeps, typically an order of magnitude faster than
    re-recording, while staying bit-identical to it.
    """
    with Tape() as tape:
        x = ADouble.input(Interval(0.2, 0.4), tape=tape)
        y = x
        for _ in range(50):
            y = paper_fn(y)

    ct = CompiledTape(tape)
    new_input = Interval(0.25, 0.35)

    benchmark(ct.forward, [new_input])

    with Tape() as fresh:
        x2 = ADouble.input(new_input, tape=fresh)
        y2 = x2
        for _ in range(50):
            y2 = paper_fn(y2)
    out = y2.node.index
    assert ct.value_lo[out] == fresh.nodes[out].value.lo
    assert ct.value_hi[out] == fresh.nodes[out].value.hi

    t0 = time.perf_counter()
    ct.forward([new_input])
    record_value(
        "core.forward_replay_seconds",
        time.perf_counter() - t0,
        nodes=len(tape),
    )
