"""Tests for the Eq. 11 significance computation."""

import pytest

from repro.ad import ADouble, Tape
from repro.ad import intrinsics as op
from repro.intervals import Interval
from repro.scorpio import (
    normalise,
    significance_map,
    significance_value,
)
from repro.scorpio.significance import significance_map_vector


class TestSignificanceValue:
    def test_eq11_width_of_product(self):
        # [u] = [1, 2], ∇ = [3, 3] -> product [3, 6], width 3.
        assert significance_value(Interval(1, 2), Interval(3.0)) == pytest.approx(
            3.0, rel=1e-9
        )

    def test_wide_adjoint(self):
        # [u] = [1, 1], ∇ = [0, 1] -> product [0, 1], width 1.
        assert significance_value(Interval(1.0), Interval(0, 1)) == pytest.approx(
            1.0
        )

    def test_zero_adjoint_insignificant(self):
        assert significance_value(Interval(0, 10), Interval(0.0)) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_none_adjoint(self):
        assert significance_value(Interval(0, 1), None) == 0.0

    def test_scalar_fallback_taylor(self):
        assert significance_value(2.0, 3.0) == 6.0
        assert significance_value(-2.0, 3.0) == 6.0

    def test_mixed_scalar_interval(self):
        assert significance_value(2.0, Interval(0, 1)) == pytest.approx(2.0)


class TestSignificanceMap:
    def test_over_tape(self):
        with Tape() as tape:
            x = ADouble.input(Interval(1, 2), tape=tape)
            y = x * 3.0
            tape.adjoint({y.node.index: Interval(1.0)})
        sig = significance_map(tape)
        assert sig[x.node.index] == pytest.approx(3.0, rel=1e-6)
        assert sig[y.node.index] == pytest.approx(3.0, rel=1e-6)


class TestVectorMap:
    def test_sums_per_output(self):
        # y1 = 2u, y2 = 5u with u = [0, 1]:
        # S = w([u]·2) + w([u]·5) = 2 + 5 = 7.
        with Tape() as tape:
            u = ADouble.input(Interval(0, 1), tape=tape)
            y1 = u * 2.0
            y2 = u * 5.0
        sig = significance_map_vector(tape, [y1.node.index, y2.node.index])
        assert sig[u.node.index] == pytest.approx(7.0, rel=1e-6)

    def test_no_signed_cancellation(self):
        # y1 = +u, y2 = -u: the summed-seed scalar sweep gives S = 0;
        # per-output vector mode must give 2·w([u]).
        with Tape() as tape:
            u = ADouble.input(Interval(0, 1), tape=tape)
            y1 = u + 0.0
            y2 = -u
        sig = significance_map_vector(tape, [y1.node.index, y2.node.index])
        assert sig[u.node.index] == pytest.approx(2.0, rel=1e-6)

    def test_matches_scalar_for_single_output(self):
        with Tape() as tape:
            x = ADouble.input(Interval(0.5, 1.5), tape=tape)
            y = op.exp(x) * x
        sig_vec = significance_map_vector(tape, [y.node.index])

        with Tape() as tape2:
            x2 = ADouble.input(Interval(0.5, 1.5), tape=tape2)
            y2 = op.exp(x2) * x2
            tape2.adjoint({y2.node.index: Interval(1.0)})
        sig_scalar = significance_map(tape2)
        assert sig_vec[x.node.index] == pytest.approx(
            sig_scalar[x2.node.index], rel=1e-6
        )

    def test_scalar_tape_taylor_sum(self):
        with Tape() as tape:
            u = ADouble.input(2.0, tape=tape)
            y1 = u * 3.0
            y2 = u * 4.0
        sig = significance_map_vector(tape, [y1.node.index, y2.node.index])
        assert sig[u.node.index] == pytest.approx(2.0 * 3.0 + 2.0 * 4.0)

    def test_adjoint_hull_stored(self):
        with Tape() as tape:
            u = ADouble.input(Interval(0, 1), tape=tape)
            y1 = u * 2.0
            y2 = -u
        significance_map_vector(tape, [y1.node.index, y2.node.index])
        assert u.node.adjoint.contains(2.0) and u.node.adjoint.contains(-1.0)


class TestNormalise:
    def test_sums_to_one(self):
        result = normalise({"a": 1.0, "b": 3.0})
        assert sum(result.values()) == pytest.approx(1.0)
        assert result["b"] == pytest.approx(0.75)

    def test_all_zero_unchanged(self):
        assert normalise({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}

    def test_empty(self):
        assert normalise({}) == {}
