"""Recording tape: the Dynamic Data-Flow Graph (DynDFG) of Section 2.3.

Every elementary operation executed by an overloaded type
(:class:`repro.ad.adouble.IntervalAdjoint` or
:class:`repro.ad.scalar.Adjoint`) appends a :class:`Node` to the active
:class:`Tape`.  A node stores the operation name, its (interval or scalar)
value, the indices of its operand nodes and the local partial derivatives
``∂φj/∂ui`` evaluated during the forward sweep — exactly the edge
annotations of the paper's DynDFG (Figure 1a).

The reverse sweep (:meth:`Tape.adjoint`) propagates adjoints backwards
through the recorded graph (Eq. 7–9 of the paper), after which every node
holds ``∇[uj][y]`` — the (interval) derivative of the seeded outputs with
respect to that node (Figure 1b).

The tape is generic over the value algebra: values and partials may be
plain ``float``s (classic adjoint AD, used for validation) or
:class:`~repro.intervals.Interval`s (interval-adjoint mode, used for
significance analysis).  The sweep only needs ``+`` and ``*``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.intervals import Interval
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

__all__ = ["Node", "Tape", "active_tape", "require_tape", "NoActiveTapeError"]

# Recording instrumentation is deliberately *not* in `Tape.record` (the
# per-op hot path): ops are counted in bulk at tape deactivation, so a
# recording of n nodes costs one counter add, not n.
_C_TAPES = _metrics.counter("tape.recordings")
_C_OPS = _metrics.counter("tape.ops_recorded")
_H_NODES = _metrics.histogram("tape.nodes")
_C_SWEEPS = _metrics.counter("ad.object_sweeps")


class NoActiveTapeError(RuntimeError):
    """An overloaded operation executed without an active tape."""


# Interval is immutable, so the sweep constants can be shared: every
# adjoint sweep starts from the same zero fill and most seeds are 1.
_IZERO = Interval(0.0)
_IONE = Interval(1.0)


class Node:
    """One vertex of the DynDFG.

    Attributes:
        index: position in the tape (topological order by construction).
        op: elementary operation name (``"add"``, ``"sin"``, ``"input"``...).
        value: forward value ``[uj]`` (Interval) or ``uj`` (float).
        parents: indices of operand nodes (``i ≺ j`` in the paper).
        partials: local partial derivatives ``∂φj/∂ui``, parallel to
            ``parents``.
        label: optional user annotation (set by INPUT/INTERMEDIATE/OUTPUT).
        adjoint: filled by :meth:`Tape.adjoint`; ``∇[uj][y]`` afterwards.
        aux: operation payload not recoverable from value/partials alone —
            the folded constant of a constant-operand binary (as
            ``(constant, reflected)``) or the clamp bounds of ``clip``.
            Required by the replay engine (:meth:`CompiledTape.forward`).
    """

    __slots__ = (
        "index",
        "op",
        "value",
        "parents",
        "partials",
        "label",
        "adjoint",
        "aux",
    )

    def __init__(
        self,
        index: int,
        op: str,
        value: Any,
        parents: tuple[int, ...],
        partials: tuple[Any, ...],
        label: str | None = None,
        aux: Any = None,
    ):
        self.index = index
        self.op = op
        self.value = value
        self.parents = parents
        self.partials = partials
        self.label = label
        self.adjoint: Any = None
        self.aux = aux

    @property
    def is_input(self) -> bool:
        """True for registered input nodes (Eq. 1 of the paper)."""
        return self.op == "input"

    def __repr__(self) -> str:
        lbl = f", label={self.label!r}" if self.label else ""
        return (
            f"Node(#{self.index}, {self.op}, value={self.value}, "
            f"parents={self.parents}{lbl})"
        )


class Tape:
    """A sequential recording of elementary operations (the DynDFG).

    Use as a context manager to activate recording::

        with Tape() as tape:
            x = IntervalAdjoint.input(Interval(0, 1), tape=tape)
            y = sin(x) + x
        adjoints = tape.adjoint(seeds={y.node.index: 1.0})
    """

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        # Comparison outcomes observed while recording, in execution order:
        # (op, left_index, right_index_or_const, outcome) tuples.  Replay
        # re-checks them on fresh inputs to detect control-flow divergence.
        self.guards: list[tuple] = []
        self._ops_counted = 0

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "Tape":
        _TAPE_STACK.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        popped = _TAPE_STACK.pop()
        if popped is not self:  # pragma: no cover - misuse guard
            raise RuntimeError("tape context stack corrupted")
        n = len(self.nodes)
        _C_TAPES.inc()
        _C_OPS.inc(n - self._ops_counted)
        self._ops_counted = n
        _H_NODES.observe(n)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        op: str,
        value: Any,
        parents: Sequence[int] = (),
        partials: Sequence[Any] = (),
        label: str | None = None,
        aux: Any = None,
    ) -> Node:
        """Append a node; ``parents`` and ``partials`` must be parallel."""
        # Hot path: every overloaded elementary op lands here.  The
        # overloads already pass tuples, so only coerce when needed, and
        # touch the node list exactly once.
        if type(parents) is not tuple:
            parents = tuple(parents)
        if type(partials) is not tuple:
            partials = tuple(partials)
        if len(parents) != len(partials):
            raise ValueError(
                f"parents/partials length mismatch: "
                f"{len(parents)} vs {len(partials)}"
            )
        nodes = self.nodes
        node = Node(len(nodes), op, value, parents, partials, label, aux)
        nodes.append(node)
        return node

    def record_input(self, value: Any, label: str | None = None) -> Node:
        """Record a registered input variable (Eq. 1)."""
        return self.record("input", value, (), (), label=label)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def inputs(self) -> list[Node]:
        """All registered input nodes, in registration order."""
        return [n for n in self.nodes if n.is_input]

    def labelled(self, label: str) -> list[Node]:
        """All nodes carrying the given user label."""
        return [n for n in self.nodes if n.label == label]

    def children(self) -> list[list[int]]:
        """Forward adjacency: for each node, indices of its consumers."""
        out: list[list[int]] = [[] for _ in self.nodes]
        for node in self.nodes:
            for parent in node.parents:
                out[parent].append(node.index)
        return out

    # ------------------------------------------------------------------
    # Reverse sweep (Eq. 7-9)
    # ------------------------------------------------------------------
    def adjoint(self, seeds: dict[int, Any]) -> list[Any]:
        """Propagate adjoints backwards from the seeded nodes.

        Args:
            seeds: mapping from node index to initial adjoint (the paper
                seeds each registered output with 1; for interval mode pass
                ``Interval(1.0)`` or a plain ``1.0`` which is coerced).

        Returns:
            A list, parallel to :attr:`nodes`, of accumulated adjoints
            ``∇[uj][y]``.  Nodes that do not influence any seeded output
            get the zero of the tape's value algebra.  The per-node
            ``adjoint`` attribute is also filled in.
        """
        if not seeds:
            raise ValueError("adjoint sweep needs at least one seeded output")
        _C_SWEEPS.inc()
        with _span("ad.adjoint") as sp:
            sp.set(nodes=len(self.nodes), backend="object")
            return self._adjoint(seeds)

    def _adjoint(self, seeds: dict[int, Any]) -> list[Any]:
        interval_mode = any(
            isinstance(node.value, Interval) for node in self.nodes
        )
        zero: Any = _IZERO if interval_mode else 0.0
        adjoints: list[Any] = [zero] * len(self.nodes)
        for index, seed in seeds.items():
            if not (0 <= index < len(self.nodes)):
                raise IndexError(f"seed index {index} outside tape")
            if interval_mode and not isinstance(seed, Interval):
                seed = _IONE if seed == 1.0 else Interval(float(seed))
            adjoints[index] = adjoints[index] + seed

        # Nodes are stored in execution (topological) order, so a single
        # backward pass implements Eq. 8 exactly.  By the time a node is
        # visited every one of its consumers has already been processed, so
        # the adjoint read here is final and can be assigned directly.
        for node in reversed(self.nodes):
            a_j = adjoints[node.index]
            node.adjoint = a_j
            if _is_zero(a_j):
                continue
            for parent, partial in zip(node.parents, node.partials):
                adjoints[parent] = adjoints[parent] + partial * a_j
        return adjoints

    def adjoint_vector(self, outputs: Sequence[int]) -> tuple:
        """Vector adjoint mode: one reverse sweep with m adjoint components.

        For a vector function ``y = F(x)`` the paper obtains
        ``S_y(uj) = Σ_i S_{y_i}(uj)`` in a *single run* (Section 2.3).
        Summing seeded scalar adjoints does not achieve that — signed
        point partials can cancel across outputs (e.g. the IDCT basis rows
        sum to zero, zeroing every AC coefficient's combined adjoint).
        Vector mode keeps one adjoint component per output, exactly like
        dco/c++'s vector adjoint types, and lets Eq. 11 be applied
        per-component before summing.

        Components are carried as NumPy ``(n_nodes, m)`` lower/upper bound
        matrices; interval products use the endpoint rule without outward
        rounding (the one-ULP rigour of the scalar sweep is irrelevant at
        significance-comparison scale).

        Returns:
            ``(lo, hi)`` matrices: row ``j`` holds the m interval adjoints
            ``∇[uj][y_i]``.  For scalar (float) tapes ``lo == hi``.
        """
        import numpy as np

        m = len(outputs)
        if m == 0:
            raise ValueError("adjoint_vector needs at least one output")
        n = len(self.nodes)
        lo = np.zeros((n, m), dtype=np.float64)
        hi = np.zeros((n, m), dtype=np.float64)
        for j, idx in enumerate(outputs):
            if not (0 <= idx < n):
                raise IndexError(f"output index {idx} outside tape")
            lo[idx, j] += 1.0
            hi[idx, j] += 1.0

        for node in reversed(self.nodes):
            alo = lo[node.index]
            ahi = hi[node.index]
            if not (alo.any() or ahi.any()):
                continue
            for parent, partial in zip(node.parents, node.partials):
                if isinstance(partial, Interval):
                    plo, phi = partial.lo, partial.hi
                else:
                    plo = phi = float(partial)
                if plo == phi:
                    contribution_lo = np.minimum(plo * alo, plo * ahi)
                    contribution_hi = np.maximum(plo * alo, plo * ahi)
                else:
                    p1, p2 = plo * alo, plo * ahi
                    p3, p4 = phi * alo, phi * ahi
                    contribution_lo = np.minimum(
                        np.minimum(p1, p2), np.minimum(p3, p4)
                    )
                    contribution_hi = np.maximum(
                        np.maximum(p1, p2), np.maximum(p3, p4)
                    )
                lo[parent] += contribution_lo
                hi[parent] += contribution_hi
        return lo, hi

    def gradient(self, adjoints: Iterable[Any] | None = None) -> list[Any]:
        """Adjoints of the registered inputs (the gradient, Eq. 9)."""
        if adjoints is None:
            adjoints = [n.adjoint for n in self.nodes]
        adjoints = list(adjoints)
        return [adjoints[n.index] for n in self.inputs()]


def _is_zero(value: Any) -> bool:
    if isinstance(value, Interval):
        return value.lo == 0.0 and value.hi == 0.0
    return value == 0.0


_TAPE_STACK: list[Tape] = []


def active_tape() -> Tape | None:
    """The innermost active tape, or ``None`` outside any tape context."""
    return _TAPE_STACK[-1] if _TAPE_STACK else None


def require_tape(tape: Tape | None = None) -> Tape:
    """Return ``tape`` or the active tape; raise if neither exists."""
    if tape is not None:
        return tape
    current = active_tape()
    if current is None:
        raise NoActiveTapeError(
            "no active Tape: wrap the computation in `with Tape() as t:` "
            "or pass tape= explicitly"
        )
    return current
