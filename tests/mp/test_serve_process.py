"""The serve process backend: byte-identity and /healthz exposure."""

import pytest

from repro.serve import ServiceConfig, ServiceThread


class TestServeProcessBackend:
    @pytest.fixture(scope="class")
    def service(self):
        config = ServiceConfig(port=0, executor="process", workers=2)
        with ServiceThread(config=config) as thread:
            yield thread

    def test_healthz_reports_backend(self, service):
        health = service.client().healthz()
        assert health["executor"] == "process"
        assert health["workers"] == 2

    def test_responses_byte_identical_to_thread_backend(self, service):
        with ServiceThread(config=ServiceConfig(port=0)) as reference:
            ref_body, _ = reference.client().analyse_raw("blackscholes")
        client = service.client()
        first, _ = client.analyse_raw("blackscholes")
        second, _ = client.analyse_raw("blackscholes")
        assert first == ref_body
        assert second == ref_body

    def test_custom_inputs_round_trip(self, service):
        inputs = [[99.0, 101.0], [104.0, 106.0], 0.03, 0.25, 1.0]
        report = service.client().analyse("blackscholes", inputs)
        assert "graph" in report and "labelled_significances" in report

    @pytest.mark.parametrize(
        "kernel", ["dct", "sobel", "blackscholes", "fisheye", "nbody"]
    )
    def test_batched_responses_byte_identical(self, service, kernel):
        """Concurrent coalesced requests through the pool answer with the
        exact bytes sequential unbatched requests get — every kernel."""
        import threading

        client = service.client()
        # Warm every pool worker's cache so the parallel round replays.
        expect, _ = client.analyse_raw(kernel)
        again, _ = client.analyse_raw(kernel)
        assert again == expect
        n = 6
        results = [None] * n
        errors = []
        barrier = threading.Barrier(n)

        def worker(i):
            try:
                with service.client() as c:
                    barrier.wait()
                    results[i] = c.analyse_detail(kernel)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for body, outcome, (size, index), trace_id in results:
            assert body == expect
            assert 1 <= size <= 16 and 0 <= index < size
            assert len(trace_id) == 32

    def test_advise_and_tune_run_in_pool(self, service):
        client = service.client()
        advice = client.advise("blackscholes", threshold=0.25)
        assert advice["kernel"] == "blackscholes"
        assert "suggestions" in advice and "advice" in advice
        tuned = client.tune("dct", target_quality=30.0, size=16)
        assert tuned["mode"] == "target_quality"
        assert "taskwait" in tuned and "probes" in tuned


class TestWorkerTapeStore:
    def test_pool_workers_attach_persisted_tapes(self, tmp_path):
        """With a tape store every pool worker warm-starts from disk: the
        first request a cold *worker* sees is already a replay."""
        store = str(tmp_path)
        # Populate the store with a cheap thread-backend server.
        with ServiceThread(
            config=ServiceConfig(port=0, store_dir=store)
        ) as seeder:
            body, outcome, _, _ = seeder.client().analyse_detail(
                "blackscholes"
            )
            assert outcome == "record"

        config = ServiceConfig(
            port=0, executor="process", workers=2, store_dir=store
        )
        with ServiceThread(config=config) as service:
            client = service.client()
            for _ in range(3):
                got, outcome, _, _ = client.analyse_detail("blackscholes")
                assert outcome == "replay"
                assert got == body


class TestServeConfigValidation:
    def test_unknown_backend_rejected(self):
        from repro.serve.app import SignificanceService

        with pytest.raises(ValueError, match="executor"):
            SignificanceService(config=ServiceConfig(executor="fibers"))

    def test_custom_registry_needs_thread_backend(self):
        from repro.serve.app import SignificanceService
        from repro.serve.kernels import default_registry

        with pytest.raises(ValueError, match="default registry"):
            SignificanceService(
                registry=default_registry(),
                config=ServiceConfig(executor="process"),
            )

    def test_thread_default_unchanged(self):
        with ServiceThread() as thread:
            health = thread.client().healthz()
            assert health["executor"] == "thread"
