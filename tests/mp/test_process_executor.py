"""ProcessExecutor: ordering, dropped tasks, fallback, metrics merging."""

import multiprocessing
import os
import time

import pytest

from repro.mp import ProcessExecutor, default_workers, make_executor
from repro.obs import metrics as obs_metrics
from repro.runtime import (
    ExecutionMode,
    SequentialExecutor,
    Task,
    ThreadedExecutor,
)


def square(i):
    return i * i


def approx_square(i):
    return i * i + 1


def boom(msg):
    raise ValueError(msg)


def in_worker():
    return multiprocessing.parent_process() is not None


def die_in_worker(i):
    if in_worker():
        os._exit(3)
    return i * 10


def slow_in_worker(i):
    if in_worker():
        time.sleep(30.0)
    return i + 100


def count_in_worker(i):
    obs_metrics.counter("test.mp.worker_count").inc()
    obs_metrics.histogram("test.mp.worker_hist").observe(float(i))
    return i


@pytest.fixture
def executor():
    with ProcessExecutor(max_workers=2, mp_context="fork") as ex:
        yield ex


def make_tasks(n, fn=square, approx=None):
    return [Task(fn=fn, args=(i,), approx_fn=approx, task_id=i) for i in range(n)]


class TestOrderingContract:
    def test_results_dense_and_submission_ordered(self, executor):
        tasks = make_tasks(7)
        results = executor.run(tasks, [ExecutionMode.ACCURATE] * 7)
        assert [r.value for r in results] == [i * i for i in range(7)]

    def test_result_binds_parent_task_object(self, executor):
        tasks = make_tasks(3)
        results = executor.run(tasks, [ExecutionMode.ACCURATE] * 3)
        for task, result in zip(tasks, results):
            assert result.task is task

    def test_dropped_tasks_never_reach_the_pool(self, executor):
        tasks = make_tasks(4)
        modes = [
            ExecutionMode.ACCURATE,
            ExecutionMode.DROPPED,
            ExecutionMode.ACCURATE,
            ExecutionMode.DROPPED,
        ]
        results = executor.run(tasks, modes)
        assert [r.value for r in results] == [0, None, 4, None]
        assert [r.mode for r in results] == modes

    def test_approximate_mode_runs_approx_fn(self, executor):
        tasks = make_tasks(3, approx=approx_square)
        modes = [
            ExecutionMode.ACCURATE,
            ExecutionMode.APPROXIMATE,
            ExecutionMode.ACCURATE,
        ]
        results = executor.run(tasks, modes)
        assert [r.value for r in results] == [0, 2, 4]

    def test_mismatched_lengths_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.run(make_tasks(2), [ExecutionMode.ACCURATE])

    def test_matches_sequential_executor(self, executor):
        tasks = make_tasks(5)
        modes = [ExecutionMode.ACCURATE] * 5
        seq = SequentialExecutor().run(make_tasks(5), modes)
        par = executor.run(tasks, modes)
        assert [r.value for r in par] == [r.value for r in seq]


class TestFailureHandling:
    def test_task_exception_propagates_with_type(self, executor):
        tasks = [Task(fn=boom, args=("kaputt",))]
        with pytest.raises(ValueError, match="kaputt"):
            executor.run(tasks, [ExecutionMode.ACCURATE])

    def test_worker_death_falls_back_sequentially(self):
        before = obs_metrics.counter("mp.fallbacks").value
        with ProcessExecutor(max_workers=2, mp_context="fork") as ex:
            tasks = [Task(fn=die_in_worker, args=(i,)) for i in range(4)]
            results = ex.run(tasks, [ExecutionMode.ACCURATE] * 4)
        assert [r.value for r in results] == [0, 10, 20, 30]
        assert obs_metrics.counter("mp.fallbacks").value == before + 1

    def test_timeout_falls_back_sequentially(self):
        with ProcessExecutor(
            max_workers=1, mp_context="fork", task_timeout=0.5
        ) as ex:
            tasks = [Task(fn=slow_in_worker, args=(i,)) for i in range(2)]
            results = ex.run(tasks, [ExecutionMode.ACCURATE] * 2)
        assert [r.value for r in results] == [100, 101]

    def test_fallback_disabled_raises(self):
        with ProcessExecutor(
            max_workers=1, mp_context="fork", fallback=False
        ) as ex:
            tasks = [Task(fn=die_in_worker, args=(0,))]
            with pytest.raises(Exception):
                ex.run(tasks, [ExecutionMode.ACCURATE])

    def test_unpicklable_task_falls_back(self):
        with ProcessExecutor(max_workers=1, mp_context="fork") as ex:
            tasks = [Task(fn=lambda: 42)]
            results = ex.run(tasks, [ExecutionMode.ACCURATE])
        assert results[0].value == 42

    def test_pool_survives_for_next_batch_after_fallback(self):
        with ProcessExecutor(max_workers=1, mp_context="fork") as ex:
            ex.run([Task(fn=die_in_worker, args=(1,))], [ExecutionMode.ACCURATE])
            results = ex.run(make_tasks(3), [ExecutionMode.ACCURATE] * 3)
            assert [r.value for r in results] == [0, 1, 4]


class TestMetricsMerging:
    def test_worker_counters_merge_into_parent(self, executor):
        counter = obs_metrics.counter("test.mp.worker_count")
        hist = obs_metrics.histogram("test.mp.worker_hist")
        before = counter.value
        hist_before = hist.count
        tasks = [Task(fn=count_in_worker, args=(i,)) for i in range(5)]
        executor.run(tasks, [ExecutionMode.ACCURATE] * 5)
        assert counter.value == before + 5
        assert hist.count == hist_before + 5


class TestConfiguration:
    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_MP_WORKERS", "bogus")
        assert default_workers() >= 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)

    def test_make_executor_resolution(self):
        assert isinstance(make_executor(None), SequentialExecutor)
        assert isinstance(make_executor("seq"), SequentialExecutor)
        assert isinstance(make_executor("thread"), ThreadedExecutor)
        process = make_executor("process", workers=2)
        assert isinstance(process, ProcessExecutor)
        assert process.max_workers == 2
        process.close()
        passthrough = SequentialExecutor()
        assert make_executor(passthrough) is passthrough
        with pytest.raises(ValueError):
            make_executor("quantum")

    def test_runtime_accepts_executor_spec(self):
        from repro.runtime import TaskRuntime

        rt = TaskRuntime(executor="process", workers=2)
        for i in range(4):
            rt.submit(square, args=(i,), significance=1.0)
        group = rt.taskwait(ratio=1.0)
        assert [r.value for r in group.results] == [0, 1, 4, 9]
        rt.executor.close()
