"""Deterministic synthetic test images (DESIGN.md §4 substitution).

The paper's image benchmarks use a public image-compression test set [5];
offline we synthesise comparable content: smooth illumination gradients,
hard edges (rectangles/disks), and band-limited texture.  What the
analysis and the quality metrics actually depend on is the *mix* of
smooth regions, edges and texture — all present here — not specific
photographs.

All generators return ``float64`` arrays in ``[0, 255]`` with shape
``(height, width)`` and are fully determined by their seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "natural_image",
    "checkerboard",
    "radial_scene",
    "gradient_image",
    "to_uint8",
]


def _coords(width: int, height: int) -> tuple[np.ndarray, np.ndarray]:
    if width <= 0 or height <= 0:
        raise ValueError(f"invalid image size {width}x{height}")
    ys, xs = np.mgrid[0:height, 0:width]
    return xs.astype(np.float64), ys.astype(np.float64)


def gradient_image(width: int, height: int, horizontal: bool = True) -> np.ndarray:
    """Linear ramp 0..255 (pure smooth content)."""
    xs, ys = _coords(width, height)
    ramp = xs / max(width - 1, 1) if horizontal else ys / max(height - 1, 1)
    return 255.0 * ramp


def checkerboard(width: int, height: int, cell: int = 8) -> np.ndarray:
    """Binary checkerboard (pure edge content)."""
    if cell <= 0:
        raise ValueError("cell size must be positive")
    xs, ys = _coords(width, height)
    board = ((xs // cell + ys // cell) % 2).astype(np.float64)
    return 255.0 * board


def natural_image(width: int, height: int, seed: int = 7) -> np.ndarray:
    """A 'natural-looking' composite: gradient + blobs + edges + texture.

    Spectral content decays with frequency like photographs do, which is
    what gives DCT blocks their characteristic large-low-frequency
    coefficient profile (needed for Figure 4).
    """
    rng = np.random.default_rng(seed)
    xs, ys = _coords(width, height)
    nx, ny = xs / width, ys / height

    image = 110.0 + 70.0 * nx + 40.0 * ny  # illumination gradient

    # A few smooth Gaussian blobs (objects).
    for _ in range(6):
        cx, cy = rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)
        sigma = rng.uniform(0.05, 0.25)
        amp = rng.uniform(-60.0, 60.0)
        image += amp * np.exp(
            -(((nx - cx) ** 2 + (ny - cy) ** 2) / (2 * sigma**2))
        )

    # Hard-edged rectangles (architecture).
    for _ in range(4):
        x0, y0 = rng.uniform(0.0, 0.7), rng.uniform(0.0, 0.7)
        w, h = rng.uniform(0.1, 0.3), rng.uniform(0.1, 0.3)
        amp = rng.uniform(-50.0, 50.0)
        mask = (nx >= x0) & (nx < x0 + w) & (ny >= y0) & (ny < y0 + h)
        image += amp * mask

    # Band-limited sinusoidal texture with decaying amplitude.
    for k in range(1, 5):
        fx, fy = rng.uniform(2.0, 6.0) * k, rng.uniform(2.0, 6.0) * k
        phase = rng.uniform(0, 2 * np.pi)
        image += (18.0 / k) * np.sin(2 * np.pi * (fx * nx + fy * ny) + phase)

    # Mild pixel noise (sensor grain).
    image += rng.normal(0.0, 2.0, size=image.shape)

    return np.clip(image, 0.0, 255.0)


def radial_scene(width: int, height: int, seed: int = 11) -> np.ndarray:
    """Scene with statistically uniform gradient content (fisheye input).

    Concentric rings dominate: their radial gradient magnitude, averaged
    over phase, is radius-independent, so the fisheye significance map
    (Figure 5) is driven purely by the lens geometry and not by uneven
    scene content.  A faint fixed-phase diagonal texture breaks the exact
    symmetry.  Frequencies are kept low so that a fisheye compressing the
    periphery by ~4-7x leaves the content above Nyquist in the distorted
    image (otherwise gradients saturate and the Figure 5 pattern
    flattens).  ``seed`` only perturbs the ring phase.
    """
    rng = np.random.default_rng(seed)
    xs, ys = _coords(width, height)
    cx, cy = (width - 1) / 2.0, (height - 1) / 2.0
    r = np.hypot(xs - cx, ys - cy) / max(cx, cy)

    phase = rng.uniform(0, 2 * np.pi)
    # 5 ring cycles: enough cycles that every radial bin of the Figure 5
    # analysis averages over full phases, low enough frequency to stay
    # above Nyquist after ~2.5x peripheral compression.
    image = 128.0 + 70.0 * np.sin(10.0 * np.pi * r + phase)  # rings
    image += 15.0 * np.sin(2 * np.pi * (2.0 * xs / width + 1.5 * ys / height))
    return np.clip(image, 0.0, 255.0)


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Clip and round a float image to uint8 pixels."""
    return np.clip(np.rint(np.asarray(image)), 0, 255).astype(np.uint8)
