"""Dynamic micro-batching: coalesce concurrent /analyse calls per kernel.

A warm ``/analyse`` request is one vectorized replay — a forward sweep,
an adjoint sweep and Eq. 11 over the kernel's cached trace.  Those
sweeps are *lane-batched* all the way down
(:meth:`~repro.ad.compiled.CompiledTape.forward_lanes` →
:func:`~repro.scorpio.compiled.analyse_replay_lanes`), so L concurrent
requests for the same kernel can share ONE sweep at marginal cost per
extra lane instead of L sweeps.  This module is the service-side
coalescer that finds those L requests.

:class:`KernelBatcher` lives on the event loop (one per kernel).  Each
arriving request parks a future on the batcher; the first request of a
quiet period starts the collection loop, which waits one *batch window*
(``--batch-window-ms``) for companions, slices off up to ``--max-batch``
requests, and ships them as a single batch to the service's dispatch
(thread or process executor — the same pools the unbatched path uses, so
lane fan-out still composes with :mod:`repro.mp`).  While a batch is in
flight new arrivals keep queuing, so a saturated service coalesces
naturally — the window only ever delays the *first* request of a batch.

Responses are byte-identical to the unbatched path — that is the pinned
contract of :meth:`TraceCache.analyse_batch_outcome
<repro.scorpio.trace_cache.TraceCache.analyse_batch_outcome>` — and each
carries ``X-Repro-Batch: <size>/<index>`` so callers (and the tests) can
see the coalescing.  Batch sizes are observed in the ``serve.batch.size``
histogram.

Error isolation: the dispatch returns one *tagged item* per request —
``("ok", body, outcome)`` or ``("err", exception)`` — so one bad request
in a batch fails alone while its companions answer normally, exactly as
if each had been dispatched by itself.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Sequence

from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["KernelBatcher", "BATCH_SIZE_HISTOGRAM"]

#: Lanes per dispatched sweep; scraped via GET /metrics.
BATCH_SIZE_HISTOGRAM = obs_metrics.histogram("serve.batch.size")

# One tagged item per request, in submission order.
DispatchFn = Callable[[Sequence[Any]], Awaitable[list]]


class KernelBatcher:
    """Coalesce concurrent submissions into batched dispatch calls.

    Single-threaded by construction: every method runs on the event
    loop, so the pending list needs no lock.  ``submit`` resolves to
    ``(item, batch_size, lane_index)`` where ``item`` is the dispatch's
    tagged result for this request.
    """

    def __init__(
        self,
        *,
        window: float,
        max_batch: int,
        dispatch: DispatchFn,
        name: str = "",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window = max(0.0, float(window))
        self.max_batch = int(max_batch)
        self.name = name
        self._dispatch = dispatch
        # (request, future, submitter's TraceContext or None)
        self._pending: list[
            tuple[Any, asyncio.Future, "obs_context.TraceContext | None"]
        ] = []
        self._task: asyncio.Task | None = None

    async def submit(self, request: Any) -> tuple[Any, int, int]:
        """Queue one request; await its slice of a batched dispatch.

        The submitter's trace context is captured here — the collection
        task is long-lived and must not inherit whichever request
        happened to start it, so each batch re-derives its identity from
        its *members'* contexts at dispatch time.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future, obs_context.current()))
        if self._task is None or self._task.done():
            self._task = loop.create_task(self._run())
        return await future

    async def _run(self) -> None:
        # Drain until quiet; the task dies when no requests are waiting
        # and the next submission starts a fresh one.
        while self._pending:
            if self.window > 0.0 and len(self._pending) < self.max_batch:
                # The batch window: wait for companions.  Only the head
                # request of a quiet period pays it; requests arriving
                # while a previous batch is in flight batch for free.
                await asyncio.sleep(self.window)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            size = len(batch)
            BATCH_SIZE_HISTOGRAM.observe(float(size))
            requests = [request for request, _, _ in batch]
            # One shared span for the whole coalesced sweep.  It joins
            # the *head* member's trace (its context parents the span)
            # and carries every member's trace id in ``links``/``lanes``,
            # so GET /debug/trace/<id> resolves the batch for each of
            # the requests that rode it, not just the first.
            contexts = [ctx for _, _, ctx in batch]
            head_ctx = next((c for c in contexts if c is not None), None)
            batch_ctx = head_ctx.child() if head_ctx is not None else None
            sp = obs_trace.manual_span("serve.batch", batch_ctx)
            sp.set(
                kernel=self.name,
                size=size,
                links=[c.trace_id for c in contexts if c is not None],
                lanes=[
                    c.to_header() if c is not None else None
                    for c in contexts
                ],
            )
            try:
                with obs_context.use(batch_ctx):
                    items = await self._dispatch(requests)
                if len(items) != size:
                    raise RuntimeError(
                        f"batch dispatch returned {len(items)} items "
                        f"for {size} requests"
                    )
            except BaseException as exc:  # noqa: BLE001 - fanned out
                sp.set(error=f"{type(exc).__name__}: {exc}")
                obs_trace.adopt([sp.finish()])
                for _, future, _ in batch:
                    if not future.done():
                        future.set_exception(exc)
                if isinstance(exc, (asyncio.CancelledError, SystemExit)):
                    raise
                continue
            obs_trace.adopt([sp.finish()])
            for index, ((_, future, _), item) in enumerate(zip(batch, items)):
                if not future.done():
                    future.set_result((item, size, index))

    def close(self) -> None:
        """Cancel the collection loop and fail anything still queued."""
        if self._task is not None and not self._task.done():
            self._task.cancel()
        pending, self._pending = self._pending, []
        for _, future, _ in pending:
            if not future.done():
                future.set_exception(
                    RuntimeError("service shut down with requests queued")
                )
