"""Execution statistics for task groups and whole runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .energy import EnergyBreakdown
from .task import ExecutionMode, TaskResult

__all__ = ["GroupStats", "GroupResult"]


@dataclass
class GroupStats:
    """Counts and costs of one ``taskwait`` (group barrier)."""

    total: int = 0
    accurate: int = 0
    approximate: int = 0
    dropped: int = 0
    executed_work: float = 0.0
    elapsed_seconds: float = 0.0
    #: Wall-clock time of the whole barrier (scheduling + execution),
    #: measured around ``executor.run``.  ``elapsed_seconds`` sums
    #: per-task times, so on a parallel executor ``wall_seconds`` is the
    #: smaller of the two; sequentially it is (slightly) larger.
    wall_seconds: float = 0.0

    @property
    def accurate_ratio(self) -> float:
        """Fraction of tasks executed accurately (0 for empty groups)."""
        return self.accurate / self.total if self.total else 0.0

    @classmethod
    def from_results(cls, results: list[TaskResult]) -> "GroupStats":
        """Aggregate result records into counts."""
        stats = cls(total=len(results))
        for r in results:
            if r.mode is ExecutionMode.ACCURATE:
                stats.accurate += 1
            elif r.mode is ExecutionMode.APPROXIMATE:
                stats.approximate += 1
            else:
                stats.dropped += 1
            stats.executed_work += r.task.executed_work(r.mode)
            stats.elapsed_seconds += r.elapsed_seconds
        return stats


@dataclass
class GroupResult:
    """Everything a ``taskwait`` returns."""

    label: str
    ratio: float
    results: list[TaskResult] = field(default_factory=list)
    stats: GroupStats = field(default_factory=GroupStats)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    def values(self) -> list[Any]:
        """Task return values in submission order (None for dropped)."""
        return [r.value for r in self.results]
