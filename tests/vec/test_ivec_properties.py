"""Property tests: every IntervalArray lane encloses the scalar result.

The whole point of the batched engine is that it is *still rigorous*: for
any operation, the lane-wise NumPy result outward-rounded per
:mod:`repro.vec.ivec` must enclose the scalar
:class:`repro.intervals.Interval` result for the same operands (which is
itself a verified enclosure of the real-number result).  Hypothesis
generates random lane batches and checks the inclusion per lane, plus
basic interval-arithmetic laws (inclusion isotonicity, point consistency).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import Interval
from repro.intervals import functions as ifn
from repro.vec import IntervalArray, ivec

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small = st.floats(
    min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False
)


@st.composite
def interval_lanes(draw, n_min=1, n_max=8, elements=finite):
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    lanes = []
    for _ in range(n):
        a = draw(elements)
        b = draw(elements)
        lanes.append(Interval(min(a, b), max(a, b)))
    return lanes


def assert_encloses(got: IntervalArray, scalar_lanes):
    want = IntervalArray.from_intervals(scalar_lanes)
    ok = got.encloses(want)
    assert ok.all(), (
        f"lane {int(np.argmin(ok))}: {got.lane(int(np.argmin(ok)))} does not "
        f"enclose {scalar_lanes[int(np.argmin(ok))]}"
    )


class TestArithmeticContainment:
    @settings(max_examples=60)
    @given(interval_lanes(), interval_lanes())
    def test_add_sub_mul(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        ax = IntervalArray.from_intervals(xs)
        ay = IntervalArray.from_intervals(ys)
        assert_encloses(ax + ay, [a + b for a, b in zip(xs, ys)])
        assert_encloses(ax - ay, [a - b for a, b in zip(xs, ys)])
        assert_encloses(ax * ay, [a * b for a, b in zip(xs, ys)])

    @settings(max_examples=60)
    @given(interval_lanes(), interval_lanes())
    def test_div(self, xs, ys):
        n = min(len(xs), len(ys))
        xs = xs[:n]
        ys = [y if not y.contains(0.0) else y + 1e7 for y in ys[:n]]
        ax = IntervalArray.from_intervals(xs)
        ay = IntervalArray.from_intervals(ys)
        assert_encloses(ax / ay, [a / b for a, b in zip(xs, ys)])

    @settings(max_examples=40)
    @given(interval_lanes(elements=small), st.integers(min_value=0, max_value=5))
    def test_int_pow(self, xs, n):
        ax = IntervalArray.from_intervals(xs)
        assert_encloses(ax**n, [x**n for x in xs])

    @settings(max_examples=40)
    @given(interval_lanes())
    def test_point_midpoints_stay_inside(self, xs):
        ax = IntervalArray.from_intervals(xs)
        ay = ax + ax * 0.5
        mids = ax.midpoint + ax.midpoint * 0.5
        assert ay.contains(mids).all()


_UNARY_CASES = [
    ("sqrt", 1e-3, 1e5),
    ("cbrt", -1e4, 1e4),
    ("exp", -50.0, 50.0),
    ("expm1", -20.0, 20.0),
    ("log", 1e-3, 1e6),
    ("log1p", -0.999, 1e6),
    ("log2", 1e-3, 1e6),
    ("log10", 1e-3, 1e6),
    ("sin", -100.0, 100.0),
    ("cos", -100.0, 100.0),
    ("atan", -1e6, 1e6),
    ("sinh", -20.0, 20.0),
    ("cosh", -20.0, 20.0),
    ("tanh", -20.0, 20.0),
    ("erf", -10.0, 10.0),
    ("erfc", -10.0, 10.0),
    ("asin", -1.0, 1.0),
    ("acos", -1.0, 1.0),
    ("floor", -1e6, 1e6),
    ("ceil", -1e6, 1e6),
    ("round_st", -1e6, 1e6),
]


@pytest.mark.parametrize("name,lo,hi", _UNARY_CASES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_unary_containment(name, lo, hi, data):
    elements = st.floats(
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    )
    lanes = data.draw(interval_lanes(elements=elements))
    arr = IntervalArray.from_intervals(lanes)
    got = getattr(ivec, name)(arr)
    scalar = [getattr(ifn, name)(iv) for iv in lanes]
    assert_encloses(got, scalar)


@settings(max_examples=40, deadline=None)
@given(interval_lanes(elements=small), interval_lanes(elements=small))
def test_binary_containment(xs, ys):
    n = min(len(xs), len(ys))
    xs, ys = xs[:n], ys[:n]
    ax = IntervalArray.from_intervals(xs)
    ay = IntervalArray.from_intervals(ys)
    # hypot = sqrt(x²+y²): both engines reject zero-spanning operands
    # (the squared sum's outward-rounded lower bound dips below zero),
    # so exercise it on lanes shifted into the positive quadrant.
    px = [x + 25.0 for x in xs]
    py = [y + 25.0 for y in ys]
    apx = IntervalArray.from_intervals(px)
    apy = IntervalArray.from_intervals(py)
    assert_encloses(
        ivec.hypot(apx, apy), [ifn.hypot(a, b) for a, b in zip(px, py)]
    )
    assert_encloses(
        ivec.minimum(ax, ay), [ifn.minimum(a, b) for a, b in zip(xs, ys)]
    )
    assert_encloses(
        ivec.maximum(ax, ay), [ifn.maximum(a, b) for a, b in zip(xs, ys)]
    )


@settings(max_examples=40, deadline=None)
@given(
    interval_lanes(
        elements=st.floats(
            min_value=1e-2,
            max_value=50.0,
            allow_nan=False,
            allow_infinity=False,
        )
    ),
    st.floats(
        min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
    ),
)
def test_pow_containment(xs, y):
    ax = IntervalArray.from_intervals(xs)
    assert_encloses(ivec.pow(ax, y), [ifn.pow(iv, y) for iv in xs])


@settings(max_examples=60, deadline=None)
@given(interval_lanes(elements=small))
def test_sampled_points_stay_enclosed(xs):
    """End-to-end: f(point in lane) lands inside f(lane) for a pipeline."""
    arr = IntervalArray.from_intervals(xs)

    def f_arr(a):
        return ivec.exp(ivec.sin(a)) * ivec.tanh(a) + a * a

    def f_pt(v):
        return math.exp(math.sin(v)) * math.tanh(v) + v * v

    out = f_arr(arr)
    for frac in (0.0, 0.25, 0.5, 1.0):
        # lo + frac*(hi-lo) can round a hair past hi; clamp so the sampled
        # point genuinely lies in the lane.
        pts = np.clip(arr.lo + frac * (arr.hi - arr.lo), arr.lo, arr.hi)
        vals = np.array([f_pt(float(p)) for p in pts])
        assert out.contains(vals).all()
