"""Tangent-linear (forward) mode AD — the ``dco::t1s``/``dco::it1s`` analogue.

A :class:`Tangent` carries a value and a directional derivative (``dot``)
and propagates both forward through arithmetic.  Like
:class:`~repro.ad.adouble.ADouble` it is generic over the value algebra:
floats give classic tangent-linear AD, :class:`~repro.intervals.Interval`
values give interval tangents.

In this repository tangent mode exists to *validate* the adjoint engine:
for a function with n inputs, n tangent runs must reproduce the gradient a
single adjoint run harvests (a standard AD consistency check), and the
tests exercise exactly that.
"""

from __future__ import annotations

from typing import Any, Union

from repro.intervals import Interval

__all__ = ["Tangent"]

_Operand = Union["Tangent", Interval, int, float]


def _zero_like(value: Any) -> Any:
    return Interval(0.0) if isinstance(value, Interval) else 0.0


class Tangent:
    """A value/derivative pair propagated in forward mode."""

    __slots__ = ("value", "dot")

    def __init__(self, value: Any, dot: Any | None = None):
        self.value = value
        self.dot = _zero_like(value) if dot is None else dot

    @classmethod
    def seed(cls, value: Any) -> "Tangent":
        """Input with derivative seeded to 1 (differentiate w.r.t. it)."""
        one = Interval(1.0) if isinstance(value, Interval) else 1.0
        return cls(value, one)

    @classmethod
    def lift(cls, operand: _Operand) -> "Tangent":
        """Coerce a passive operand to a zero-derivative tangent."""
        if isinstance(operand, Tangent):
            return operand
        if isinstance(operand, Interval):
            return cls(operand, Interval(0.0))
        return cls(float(operand), 0.0)

    # ------------------------------------------------------------------
    def __add__(self, other: _Operand) -> "Tangent":
        o = Tangent.lift(other)
        return Tangent(self.value + o.value, self.dot + o.dot)

    __radd__ = __add__

    def __sub__(self, other: _Operand) -> "Tangent":
        o = Tangent.lift(other)
        return Tangent(self.value - o.value, self.dot - o.dot)

    def __rsub__(self, other: _Operand) -> "Tangent":
        o = Tangent.lift(other)
        return Tangent(o.value - self.value, o.dot - self.dot)

    def __mul__(self, other: _Operand) -> "Tangent":
        if other is self:
            # Same-object square: sharp interval square (see Interval).
            from repro.intervals import functions as ifn

            return Tangent(ifn.pow(self.value, 2), 2.0 * self.value * self.dot)
        o = Tangent.lift(other)
        return Tangent(
            self.value * o.value, self.dot * o.value + self.value * o.dot
        )

    __rmul__ = __mul__

    def __truediv__(self, other: _Operand) -> "Tangent":
        o = Tangent.lift(other)
        value = self.value / o.value
        dot = (self.dot - value * o.dot) / o.value
        return Tangent(value, dot)

    def __rtruediv__(self, other: _Operand) -> "Tangent":
        return Tangent.lift(other).__truediv__(self)

    def __neg__(self) -> "Tangent":
        return Tangent(-self.value, -self.dot)

    def __pos__(self) -> "Tangent":
        return self

    def __abs__(self) -> "Tangent":
        if isinstance(self.value, Interval):
            iv = self.value
            if iv.lo >= 0:
                sign: Any = 1.0
            elif iv.hi <= 0:
                sign = -1.0
            else:
                sign = Interval(-1.0, 1.0)
        else:
            sign = 1.0 if self.value >= 0 else -1.0
        return Tangent(abs(self.value), sign * self.dot)

    def __pow__(self, exponent: _Operand) -> "Tangent":
        from . import intrinsics as _in

        if isinstance(exponent, (int, float)) and float(exponent).is_integer():
            n = int(exponent)
            from repro.intervals import functions as ifn

            if n == 0:
                one = (
                    Interval(1.0)
                    if isinstance(self.value, Interval)
                    else 1.0
                )
                return Tangent(one, _zero_like(self.value))
            value = ifn.pow(self.value, n)
            partial = float(n) * ifn.pow(self.value, n - 1)
            return Tangent(value, partial * self.dot)
        return _in.exp(Tangent.lift(exponent) * _in.log(self))

    def __rpow__(self, base: _Operand) -> "Tangent":
        from . import intrinsics as _in
        from repro.intervals import functions as ifn

        lifted = Tangent.lift(base)
        return _in.exp(self * ifn.log(lifted.value))

    # Comparisons delegate to the underlying algebra (interval semantics
    # raise AmbiguousComparisonError exactly as in adjoint mode).
    def __lt__(self, other: _Operand) -> bool:
        return self.value < Tangent.lift(other).value

    def __le__(self, other: _Operand) -> bool:
        return self.value <= Tangent.lift(other).value

    def __gt__(self, other: _Operand) -> bool:
        return self.value > Tangent.lift(other).value

    def __ge__(self, other: _Operand) -> bool:
        return self.value >= Tangent.lift(other).value

    def __repr__(self) -> str:
        return f"Tangent({self.value}, dot={self.dot})"
