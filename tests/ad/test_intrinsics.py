"""Tests for the dispatching intrinsic functions across all modes."""

import math

import pytest

from repro.ad import ADouble, Tangent, Tape, adjoint_gradient, finite_difference_gradient
from repro.ad import intrinsics as op
from repro.intervals import Interval

UNARY_CASES = [
    ("sin", 0.7),
    ("cos", 0.7),
    ("tan", 0.4),
    ("asin", 0.3),
    ("acos", 0.3),
    ("atan", 1.5),
    ("sinh", 0.8),
    ("cosh", 0.8),
    ("tanh", 0.8),
    ("exp", 1.2),
    ("expm1", 0.4),
    ("log", 2.0),
    ("log1p", 0.6),
    ("log2", 3.0),
    ("log10", 5.0),
    ("sqrt", 2.5),
    ("cbrt", 8.0),
    ("erf", 0.5),
    ("erfc", 0.5),
]


class TestDerivativesAgainstFiniteDifferences:
    @pytest.mark.parametrize("name,x", UNARY_CASES)
    def test_adjoint_matches_fd(self, name, x):
        fn = getattr(op, name)
        _, grad = adjoint_gradient(lambda xs: fn(xs[0]), [x])
        (fd,) = finite_difference_gradient(lambda xs: fn(xs[0]), [x])
        assert grad[0] == pytest.approx(fd, rel=1e-5, abs=1e-7)

    @pytest.mark.parametrize("name,x", UNARY_CASES)
    def test_tangent_matches_adjoint(self, name, x):
        fn = getattr(op, name)
        t = fn(Tangent.seed(x))
        _, grad = adjoint_gradient(lambda xs: fn(xs[0]), [x])
        assert t.dot == pytest.approx(grad[0], rel=1e-12)


class TestModeDispatch:
    @pytest.mark.parametrize("name,x", UNARY_CASES)
    def test_scalar_passthrough(self, name, x):
        fn = getattr(op, name)
        assert fn(x) == pytest.approx(getattr(math, name)(x))

    @pytest.mark.parametrize("name,x", UNARY_CASES)
    def test_interval_passthrough_encloses(self, name, x):
        fn = getattr(op, name)
        result = fn(Interval(x * 0.9, x * 1.1))
        assert result.contains(getattr(math, name)(x))

    @pytest.mark.parametrize("name,x", UNARY_CASES)
    def test_interval_adjoint_enclosure(self, name, x):
        fn = getattr(op, name)
        with Tape() as tape:
            taped = ADouble.input(Interval(x * 0.95, x * 1.05), tape=tape)
            y = fn(taped)
            tape.adjoint({y.node.index: Interval(1.0)})
        _, scalar_grad = adjoint_gradient(lambda xs: fn(xs[0]), [x])
        assert y.value.contains(getattr(math, name)(x))
        assert taped.node.adjoint.contains(scalar_grad[0])


class TestSpecialIntrinsics:
    def test_round_st_scalar_straight_through(self):
        _, grad = adjoint_gradient(lambda xs: op.round_st(xs[0]), [1.3])
        assert grad[0] == 1.0

    def test_round_st_interval_partial(self):
        with Tape() as tape:
            x = ADouble.input(Interval(0.0, 1.0), tape=tape)
            y = op.round_st(x)
        assert tape[y.node.index].partials[0] == Interval(0.0, 1.0)

    def test_round_st_tangent(self):
        t = op.round_st(Tangent.seed(1.3))
        assert t.dot == 1.0

    def test_floor_zero_derivative(self):
        _, grad = adjoint_gradient(lambda xs: op.floor(xs[0]) + xs[0], [1.3])
        assert grad[0] == 1.0
        t = op.floor(Tangent.seed(1.3))
        assert t.dot == 0.0

    def test_pow_dispatch(self):
        assert op.pow(2.0, 3.0) == 8.0
        _, grad = adjoint_gradient(lambda xs: op.pow(xs[0], 3), [2.0])
        assert grad[0] == 12.0
        _, grad = adjoint_gradient(lambda xs: op.pow(2.0, xs[0]), [3.0])
        assert grad[0] == pytest.approx(8.0 * math.log(2.0))

    def test_hypot_gradient(self):
        _, grad = adjoint_gradient(
            lambda xs: op.hypot(xs[0], xs[1]), [3.0, 4.0]
        )
        assert grad[0] == pytest.approx(0.6)
        assert grad[1] == pytest.approx(0.8)

    def test_atan2_gradient(self):
        _, grad = adjoint_gradient(
            lambda xs: op.atan2(xs[0], xs[1]), [1.0, 2.0]
        )
        fd = finite_difference_gradient(
            lambda xs: math.atan2(xs[0], xs[1]), [1.0, 2.0]
        )
        assert grad[0] == pytest.approx(fd[0], rel=1e-5)
        assert grad[1] == pytest.approx(fd[1], rel=1e-5)


class TestMinMaxClip:
    def test_minimum_scalar(self):
        assert op.minimum(1.0, 2.0) == 1.0

    def test_minimum_gradient_picks_argmin(self):
        _, grad = adjoint_gradient(
            lambda xs: op.minimum(xs[0], xs[1]), [1.0, 2.0]
        )
        assert grad == [1.0, 0.0]

    def test_maximum_gradient_picks_argmax(self):
        _, grad = adjoint_gradient(
            lambda xs: op.maximum(xs[0], xs[1]), [1.0, 2.0]
        )
        assert grad == [0.0, 1.0]

    def test_minimum_interval_certain(self):
        with Tape() as tape:
            a = ADouble.input(Interval(0.0, 1.0), tape=tape)
            b = ADouble.input(Interval(2.0, 3.0), tape=tape)
            y = op.minimum(a, b)
        assert y.value == Interval(0.0, 1.0)
        assert tape[y.node.index].partials == (1.0, 0.0)

    def test_minimum_interval_ambiguous_enclosure(self):
        with Tape() as tape:
            a = ADouble.input(Interval(0.0, 2.0), tape=tape)
            b = ADouble.input(Interval(1.0, 3.0), tape=tape)
            y = op.minimum(a, b)
        pa, pb = tape[y.node.index].partials
        assert pa == Interval(0.0, 1.0) and pb == Interval(0.0, 1.0)

    def test_min_max_tangent(self):
        a, b = Tangent.seed(1.0), Tangent(2.0, 5.0)
        assert op.minimum(a, b).dot == 1.0
        assert op.maximum(a, b).dot == 5.0

    def test_clip_inside_gradient(self):
        _, grad = adjoint_gradient(lambda xs: op.clip(xs[0], 0.0, 10.0), [5.0])
        assert grad == [1.0]

    def test_clip_saturated_gradient(self):
        _, grad = adjoint_gradient(lambda xs: op.clip(xs[0], 0.0, 10.0), [15.0])
        assert grad == [0.0]

    def test_clip_interval_ambiguous(self):
        with Tape() as tape:
            x = ADouble.input(Interval(5.0, 15.0), tape=tape)
            y = op.clip(x, 0.0, 10.0)
        assert tape[y.node.index].partials[0] == Interval(0.0, 1.0)
        assert y.value == Interval(5.0, 10.0)

    def test_clip_tangent(self):
        t = op.clip(Tangent.seed(5.0), 0.0, 10.0)
        assert t.value == 5.0 and t.dot == 1.0
