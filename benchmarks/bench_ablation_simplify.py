"""Ablation: the S4 simplify pass (aggregation-chain elimination).

DESIGN.md §6: without simplify, the accumulation chain of the Maclaurin
series puts one term per BFS level; the variance scan then sees levels of
1-2 nodes and the partition degenerates.  With simplify, every term lands
on level 1 and the scan finds the paper's partition immediately.
"""

import pytest

from repro.ad import ADouble, Tape
from repro.intervals import Interval
from repro.scorpio import (
    DynDFG,
    find_significance_variance,
    significance_map,
    simplify,
)


def build_graph(n=8):
    tape = Tape()
    with tape:
        x = ADouble.input(Interval(-0.01, 0.99), label="x", tape=tape)
        acc = ADouble.constant(0.0)
        terms = []
        for i in range(n):
            t = x**i
            terms.append(t.node.index)
            acc = acc + t
        tape.adjoint({acc.node.index: Interval(1.0)})
    sig = significance_map(tape)
    return DynDFG.from_tape(tape, [acc.node.index], sig), terms


def test_ablation_simplify(benchmark):
    raw, terms = build_graph()

    def run_both():
        simplified = simplify(raw)
        return (
            find_significance_variance(raw.copy(), delta=1e-4),
            find_significance_variance(simplified, delta=1e-4),
            simplified,
        )

    scan_raw, scan_simplified, simplified = benchmark(run_both)

    # With simplify: all terms on level 1, partition found there, and the
    # task nodes are exactly the terms (+ the shared input path).
    assert scan_simplified.found_level == 1
    assert {simplified[t].level for t in terms} == {1}

    # Without simplify: the chain stretches the graph; terms sit on many
    # different levels, so no single level exposes the term ranking.
    raw_levels = {raw[t].level for t in terms}
    assert len(raw_levels) > 3

    benchmark.extra_info["raw_height"] = raw.height
    benchmark.extra_info["simplified_height"] = simplified.height
    benchmark.extra_info["raw_term_levels"] = sorted(raw_levels)
