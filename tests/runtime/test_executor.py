"""Tests for the sequential and threaded executors."""

import threading

import pytest

from repro.runtime import (
    ExecutionMode,
    SequentialExecutor,
    Task,
    ThreadedExecutor,
)


def make_tasks(n, log=None):
    def body(i):
        if log is not None:
            log.append(i)
        return i * i

    return [Task(fn=body, args=(i,)) for i in range(n)]


class TestSequential:
    def test_results_in_order(self):
        tasks = make_tasks(5)
        results = SequentialExecutor().run(
            tasks, [ExecutionMode.ACCURATE] * 5
        )
        assert [r.value for r in results] == [0, 1, 4, 9, 16]

    def test_execution_order_is_submission_order(self):
        log = []
        tasks = make_tasks(4, log)
        SequentialExecutor().run(tasks, [ExecutionMode.ACCURATE] * 4)
        assert log == [0, 1, 2, 3]

    def test_dropped_not_executed(self):
        log = []
        tasks = make_tasks(3, log)
        results = SequentialExecutor().run(
            tasks,
            [ExecutionMode.ACCURATE, ExecutionMode.DROPPED, ExecutionMode.ACCURATE],
        )
        assert log == [0, 2]
        assert results[1].value is None

    def test_elapsed_recorded(self):
        results = SequentialExecutor().run(
            make_tasks(1), [ExecutionMode.ACCURATE]
        )
        assert results[0].elapsed_seconds >= 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SequentialExecutor().run(make_tasks(2), [ExecutionMode.ACCURATE])

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            SequentialExecutor().run(
                [Task(fn=boom)], [ExecutionMode.ACCURATE]
            )


class TestThreaded:
    def test_matches_sequential_results(self):
        tasks = make_tasks(20)
        modes = [ExecutionMode.ACCURATE] * 20
        seq = SequentialExecutor().run(tasks, modes)
        par = ThreadedExecutor(max_workers=4).run(tasks, modes)
        assert [r.value for r in par] == [r.value for r in seq]

    def test_dropped_skipped(self):
        tasks = make_tasks(3)
        results = ThreadedExecutor(2).run(
            tasks,
            [ExecutionMode.DROPPED] * 3,
        )
        assert all(r.value is None for r in results)

    def test_actually_uses_threads(self):
        seen = set()

        def body():
            seen.add(threading.get_ident())

        tasks = [Task(fn=body) for _ in range(16)]
        ThreadedExecutor(4).run(tasks, [ExecutionMode.ACCURATE] * 16)
        assert len(seen) >= 1  # at least ran; >1 not guaranteed on tiny work

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(1).run(make_tasks(2), [ExecutionMode.ACCURATE])

    def test_exception_propagates(self):
        def boom():
            raise ValueError("bad")

        with pytest.raises(ValueError, match="bad"):
            ThreadedExecutor(2).run([Task(fn=boom)], [ExecutionMode.ACCURATE])


class TestThreadedResultShape:
    def test_dense_and_in_submission_order(self):
        # The result list must line up index-for-index with the submitted
        # tasks — including dropped ones — so callers can zip them.
        tasks = make_tasks(12)
        modes = [
            ExecutionMode.DROPPED if i % 3 == 0 else ExecutionMode.ACCURATE
            for i in range(12)
        ]
        results = ThreadedExecutor(max_workers=4).run(tasks, modes)
        assert len(results) == len(tasks)
        for i, (task, mode, result) in enumerate(zip(tasks, modes, results)):
            assert result.task is task
            assert result.mode is mode
            if mode is ExecutionMode.DROPPED:
                assert result.value is None
            else:
                assert result.value == i * i
