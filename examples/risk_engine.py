#!/usr/bin/env python
"""Approximate option-risk engine (the paper's BlackScholes scenario).

A derivatives desk reprices a large portfolio continuously; most of the
book only needs indicative prices, but the largest positions need full
precision.  This example:

1. runs the block significance analysis (A = d1 dominates);
2. prices a portfolio at several accuracy ratios, showing the
   price-error / energy trade-off;
3. demonstrates *selective* precision: pinning the top decile of
   positions (by notional) to significance 1.0 so they are always priced
   accurately regardless of the ratio knob.

Run:  python examples/risk_engine.py [--count 8192]
"""

import argparse

import numpy as np

from repro.kernels.blackscholes import (
    analyse_blackscholes,
    blackscholes_significance,
    make_portfolio,
    price_portfolio,
)
from repro.kernels.blackscholes.tasks import (
    ENERGY_MODEL,
    _price_chunk_accurate,
    price_chunk_approx,
)
from repro.kernels.blackscholes.sequential import (
    OPS_PER_OPTION_ACCURATE,
    OPS_PER_OPTION_APPROX,
)
from repro.metrics import aggregate_relative_error
from repro.runtime import TaskRuntime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=8192)
    args = parser.parse_args()

    analysis = analyse_blackscholes(samples=12)
    print("block significances (normalised):")
    for name in "ABCD":
        print(f"  {name}: {analysis.block_significance[name]:.3f}")
    print(f"ranking: {' > '.join(analysis.ranking())}\n")

    portfolio = make_portfolio(count=args.count)
    reference = price_portfolio(
        portfolio.spots,
        portfolio.strikes,
        portfolio.rates,
        portfolio.volatilities,
        portfolio.expiries,
        portfolio.puts,
    )

    print(f"{'ratio':>6} {'rel error':>11} {'energy':>9}")
    for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
        run = blackscholes_significance(portfolio, ratio)
        err = aggregate_relative_error(reference, run.output)
        print(f"{ratio:>6.2f} {err * 100:>10.4f}% {run.joules:>7.1f} J")

    # Selective precision: big positions always accurate.
    chunk = 128
    notionals = np.array(
        [
            float(np.sum(portfolio.spots[s : s + chunk]))
            for s in range(0, portfolio.count, chunk)
        ]
    )
    threshold = np.quantile(notionals, 0.9)
    rt = TaskRuntime(energy_model=ENERGY_MODEL)
    prices = np.zeros(portfolio.count)
    for i, start in enumerate(range(0, portfolio.count, chunk)):
        stop = min(start + chunk, portfolio.count)
        piece = portfolio.slice(start, stop)
        significance = 1.0 if notionals[i] >= threshold else 0.4
        rt.submit(
            _price_chunk_accurate,
            args=(prices, piece, start),
            significance=significance,
            approx_fn=price_chunk_approx,
            label="book",
            work=OPS_PER_OPTION_ACCURATE * piece.count,
            approx_work=OPS_PER_OPTION_APPROX * piece.count,
        )
    group = rt.taskwait("book", ratio=0.0)

    big = notionals >= threshold
    chunk_err = []
    for i, start in enumerate(range(0, portfolio.count, chunk)):
        stop = min(start + chunk, portfolio.count)
        chunk_err.append(
            aggregate_relative_error(reference[start:stop], prices[start:stop])
        )
    chunk_err = np.array(chunk_err)
    print(
        f"\nselective run at ratio 0.0: {group.stats.accurate} of "
        f"{group.stats.total} chunks accurate (the big positions)"
    )
    print(f"  error on big positions:   {chunk_err[big].mean() * 100:.4f}%")
    print(f"  error on the rest:        {chunk_err[~big].mean() * 100:.4f}%")
    print(f"  energy: {group.energy.total:.1f} J")


if __name__ == "__main__":
    main()
