"""Tests for S4: aggregation-node elimination."""

from repro.ad import ADouble, Tape
from repro.scorpio import DynDFG, simplify
from repro.scorpio.dyndfg import DFGNode


def node(nid, parents=(), op="op", label=None):
    return DFGNode(
        id=nid,
        op=op,
        label=label,
        value=1.0,
        adjoint=None,
        significance=None,
        parents=tuple(parents),
    )


class TestChainCollapse:
    def _accumulation_graph(self, n_terms=4):
        """const -> add -> add -> ... with one term node feeding each add."""
        nodes = [node(0, op="const")]
        prev = 0
        nid = 1
        term_ids = []
        for _ in range(n_terms):
            term = node(nid, op="mul")
            term_ids.append(nid)
            nid += 1
            acc = node(nid, (prev, term.id), op="add")
            prev = nid
            nid += 1
            nodes.extend([term, acc])
        return DynDFG(nodes, outputs=[prev]), term_ids, prev

    def test_chain_collapsed_to_single_node(self):
        graph, terms, out = self._accumulation_graph()
        simplified = simplify(graph)
        adds = [n for n in simplified if n.op == "add"]
        assert len(adds) == 1 and adds[0].id == out

    def test_terms_become_direct_parents(self):
        graph, terms, out = self._accumulation_graph()
        simplified = simplify(graph)
        assert set(simplified[out].parents) == set(terms)

    def test_terms_all_on_level_one(self):
        graph, terms, out = self._accumulation_graph()
        simplified = simplify(graph)
        assert {simplified[t].level for t in terms} == {1}

    def test_const_seed_dropped(self):
        graph, _, out = self._accumulation_graph()
        simplified = simplify(graph)
        assert all(n.op != "const" for n in simplified)

    def test_merged_ids_recorded(self):
        graph, _, out = self._accumulation_graph(3)
        simplified = simplify(graph)
        # Two absorbed adds plus the absorbed const seed.
        assert len(simplified[out].merged) == 3

    def test_sub_chains_also_collapse(self):
        nodes = [
            node(0, op="input"),
            node(1, (0,), op="mul"),
            node(2, (0,), op="mul"),
            node(3, (1,), op="add"),
            node(4, (3, 2), op="sub"),
        ]
        graph = DynDFG(nodes, outputs=[4])
        simplified = simplify(graph)
        assert set(simplified[4].parents) == {1, 2}


class TestNoOverCollapse:
    def test_shared_adds_not_absorbed(self):
        # The inner add has TWO consumers; absorbing it would be wrong.
        nodes = [
            node(0, op="input"),
            node(1, (0,), op="add"),
            node(2, (1,), op="add"),
            node(3, (1, 2), op="mul"),
        ]
        graph = DynDFG(nodes, outputs=[3])
        simplified = simplify(graph)
        assert 1 in simplified.nodes

    def test_mul_chains_untouched(self):
        nodes = [
            node(0, op="input"),
            node(1, (0,), op="mul"),
            node(2, (1,), op="mul"),
        ]
        graph = DynDFG(nodes, outputs=[2])
        simplified = simplify(graph)
        assert len(simplified) == 3

    def test_add_feeding_mul_kept(self):
        # (a + b) * (c + d): the adds feed a mul, not another add.
        nodes = [
            node(0, op="input"),
            node(1, op="input"),
            node(2, op="input"),
            node(3, op="input"),
            node(4, (0, 1), op="add"),
            node(5, (2, 3), op="add"),
            node(6, (4, 5), op="mul"),
        ]
        graph = DynDFG(nodes, outputs=[6])
        simplified = simplify(graph)
        assert len(simplified) == 7

    def test_labels_and_significance_preserved(self):
        nodes = [
            node(0, op="input", label="x"),
            node(1, (0,), op="mul"),
            node(2, (1,), op="add"),
        ]
        nodes[2].significance = 0.7
        graph = DynDFG(nodes, outputs=[2])
        simplified = simplify(graph)
        assert simplified[0].label == "x"
        assert simplified[2].significance == 0.7


class TestOnRealTape:
    def test_maclaurin_structure(self):
        with Tape() as tape:
            x = ADouble.input(1.0, label="x", tape=tape)
            acc = ADouble.constant(0.0)
            terms = []
            for i in range(4):
                t = x**i
                terms.append(t.node.index)
                acc = acc + t
            tape.adjoint({acc.node.index: 1.0})
        graph = simplify(DynDFG.from_tape(tape, [acc.node.index]))
        out = acc.node.index
        assert set(graph[out].parents) == set(terms)
        assert {graph[t].level for t in terms} == {1}
