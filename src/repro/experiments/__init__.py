"""Experiment drivers — one per table/figure of the paper's evaluation.

Run any module directly (``python -m repro.experiments.figure7``) or use
the functions programmatically.  The experiment index lives in DESIGN.md
§3; measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

from .figure3 import Figure3, figure3
from .figure4 import Figure4, figure4
from .figure5 import Figure5, figure5
from .figure6 import Figure6, figure6
from .figure7 import (
    figure7_all,
    figure7_blackscholes,
    figure7_dct,
    figure7_fisheye,
    figure7_nbody,
    figure7_sobel,
)
from .artifacts import save_all_artifacts, save_figure4, save_figure5
from .headline import HeadlineResult, format_headline, headline
from .plots import render_all_panels, render_panel
from .record import record_all, save_record
from .sweep import RATIOS, SweepPoint, SweepResult, format_sweep, run_sweep
from .table2 import Table2Row, count_loc, format_table2, table2

__all__ = [
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7_sobel",
    "figure7_dct",
    "figure7_fisheye",
    "figure7_nbody",
    "figure7_blackscholes",
    "figure7_all",
    "headline",
    "format_headline",
    "HeadlineResult",
    "table2",
    "format_table2",
    "count_loc",
    "Table2Row",
    "Figure3",
    "Figure4",
    "Figure5",
    "Figure6",
    "SweepResult",
    "SweepPoint",
    "run_sweep",
    "format_sweep",
    "RATIOS",
    "render_panel",
    "render_all_panels",
    "save_figure4",
    "save_figure5",
    "save_all_artifacts",
    "record_all",
    "save_record",
]
