"""Tests for JSON serialisation of analysis results."""

import json

import pytest

from repro.intervals import Interval
from repro.kernels.maclaurin import analyse_maclaurin
from repro.scorpio.serialize import (
    graph_from_dict,
    graph_to_dict,
    interval_to_json,
    report_to_dict,
    report_to_json,
)


@pytest.fixture(scope="module")
def report():
    return analyse_maclaurin().report


class TestIntervalJson:
    def test_interval(self):
        assert interval_to_json(Interval(1, 2)) == {"lo": 1.0, "hi": 2.0}

    def test_scalars_pass_through(self):
        assert interval_to_json(3.5) == 3.5
        assert interval_to_json(None) is None

    def test_unknown_types_reprd(self):
        assert isinstance(interval_to_json(object()), str)


class TestGraphRoundtrip:
    def test_roundtrip_structure(self, report):
        data = graph_to_dict(report.simplified_graph)
        restored = graph_from_dict(data)
        assert len(restored) == len(report.simplified_graph)
        for node in report.simplified_graph:
            clone = restored[node.id]
            assert clone.op == node.op
            assert clone.label == node.label
            assert clone.parents == node.parents
            assert clone.significance == node.significance

    def test_levels_recomputed(self, report):
        restored = graph_from_dict(graph_to_dict(report.simplified_graph))
        for node in report.simplified_graph:
            assert restored[node.id].level == node.level

    def test_interval_values_restored(self, report):
        restored = graph_from_dict(graph_to_dict(report.raw_graph))
        original = report.raw_graph
        node = original.labelled("term1")[0]
        assert restored[node.id].value == node.value

    def test_json_serialisable(self, report):
        text = json.dumps(graph_to_dict(report.raw_graph))
        assert "term1" in text


class TestReportJson:
    def test_dict_fields(self, report):
        data = report_to_dict(report)
        assert data["partition_level"] == 1
        assert "term1" in data["labelled_significances"]
        assert data["raw_graph_size"] >= data["simplified_graph_size"]

    def test_json_parses(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed["normalised_significances"]["term0"] == pytest.approx(
            0.0, abs=1e-9
        )

    def test_graph_embedded(self, report):
        data = report_to_dict(report)
        restored = graph_from_dict(data["graph"])
        assert restored.outputs == list(report.graph.outputs)
