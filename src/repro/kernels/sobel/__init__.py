"""Sobel edge filter benchmark (paper Section 4.1.1)."""

from .analysis import SobelAnalysis, analyse_sobel, analyse_sobel_pixel
from .perforated import sobel_perforated
from .sequential import (
    combine_image,
    combine_parts_pixel,
    part_contributions,
    sobel_parts_pixel,
    sobel_pixel,
    sobel_reference,
)
from .tasks import sobel_significance

__all__ = [
    "sobel_reference",
    "sobel_pixel",
    "sobel_parts_pixel",
    "combine_parts_pixel",
    "part_contributions",
    "combine_image",
    "analyse_sobel",
    "analyse_sobel_pixel",
    "SobelAnalysis",
    "sobel_significance",
    "sobel_perforated",
]
