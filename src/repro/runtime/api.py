"""The significance-aware task runtime (Listing 7's pragmas as an API).

Usage mirroring the paper's Maclaurin port::

    rt = TaskRuntime()
    for i in range(1, n):
        rt.submit(
            compute_term,
            args=(temp, x, i),
            significance=(n - i + 1) / (n + 2),
            approx_fn=compute_term_fast,
            label="maclaurin",
            work=i,
        )
    group = rt.taskwait("maclaurin", ratio=wait_ratio)

``submit`` is ``#pragma omp task significance(...) approxfun(...)
label(...)``; ``taskwait`` is ``#pragma omp taskwait label(...)
ratio(...)``: it schedules the group with
:func:`~repro.runtime.scheduler.plan_modes`, executes it, measures energy,
and clears the group for reuse.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs import metrics as _obs_metrics
from repro.obs.trace import span as _obs_span

from .energy import AnalyticEnergyModel, EnergyBreakdown, EnergyModel
from .executor import Executor, SequentialExecutor
from .scheduler import plan_modes
from .stats import GroupResult, GroupStats
from .task import Task

__all__ = ["TaskRuntime"]

_C_SUBMITTED = _obs_metrics.counter("runtime.tasks_submitted")
_C_TASKWAITS = _obs_metrics.counter("runtime.taskwaits")
_C_ACCURATE = _obs_metrics.counter("runtime.tasks_accurate")
_C_APPROX = _obs_metrics.counter("runtime.tasks_approximate")
_C_DROPPED = _obs_metrics.counter("runtime.tasks_dropped")
_H_BARRIER = _obs_metrics.histogram("runtime.taskwait_wall_seconds")


class TaskRuntime:
    """Collects significance-tagged tasks and executes them per group."""

    def __init__(
        self,
        executor: "Executor | str | None" = None,
        energy_model: EnergyModel | None = None,
        *,
        workers: int | None = None,
    ):
        if isinstance(executor, str):
            # Resolved lazily through repro.mp so plain sequential use
            # never imports the multiprocessing machinery.  "process"
            # tasks must return their results — in-place mutation of
            # argument arrays does not cross process boundaries.
            from repro.mp import make_executor

            executor = make_executor(executor, workers)
        self.executor: Executor = executor or SequentialExecutor()
        self.energy_model: EnergyModel = energy_model or AnalyticEnergyModel()
        self._groups: dict[str, list[Task]] = {}
        self._next_id = 0
        self.history: list[GroupResult] = []

    # ------------------------------------------------------------------
    # Task creation (the `#pragma omp task` clauses)
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        significance: float = 1.0,
        approx_fn: Callable[..., Any] | None = None,
        label: str = "default",
        work: float = 1.0,
        approx_work: float = 0.0,
    ) -> Task:
        """Create a task in group ``label`` and return it."""
        task = Task(
            fn=fn,
            args=args,
            kwargs=kwargs or {},
            significance=significance,
            approx_fn=approx_fn,
            label=label,
            work=work,
            approx_work=approx_work,
            task_id=self._next_id,
        )
        self._next_id += 1
        self._groups.setdefault(label, []).append(task)
        _C_SUBMITTED.inc()
        return task

    def pending(self, label: str = "default") -> int:
        """Number of submitted, not-yet-awaited tasks in a group."""
        return len(self._groups.get(label, []))

    # ------------------------------------------------------------------
    # Barriers (the `#pragma omp taskwait` directive)
    # ------------------------------------------------------------------
    def taskwait(self, label: str = "default", ratio: float = 1.0) -> GroupResult:
        """Schedule, execute and account one task group.

        At least ``ratio``·N tasks run accurately, chosen by descending
        significance; the rest run approximately or are dropped.  The
        group is consumed (subsequent submissions start a fresh group).
        """
        tasks = self._groups.pop(label, [])
        _C_TASKWAITS.inc()
        with _obs_span("runtime.taskwait") as sp:
            modes = plan_modes(tasks, ratio)
            start = time.perf_counter()
            results = self.executor.run(tasks, modes)
            wall = time.perf_counter() - start
            energy = self.energy_model.measure(results)
            stats = GroupStats.from_results(results)
            stats.wall_seconds = wall
            _C_ACCURATE.inc(stats.accurate)
            _C_APPROX.inc(stats.approximate)
            _C_DROPPED.inc(stats.dropped)
            _H_BARRIER.observe(wall)
            sp.set(
                label=label,
                ratio=ratio,
                tasks=stats.total,
                accurate=stats.accurate,
                approximate=stats.approximate,
                dropped=stats.dropped,
            )
            group = GroupResult(
                label=label,
                ratio=ratio,
                results=results,
                stats=stats,
                energy=energy,
            )
        self.history.append(group)
        return group

    def wait_all(self, ratio: float = 1.0) -> dict[str, GroupResult]:
        """Global barrier: taskwait every group with one ratio."""
        return {
            label: self.taskwait(label, ratio=ratio)
            for label in list(self._groups)
        }

    # ------------------------------------------------------------------
    # Accounting over the whole run
    # ------------------------------------------------------------------
    @property
    def total_energy(self) -> EnergyBreakdown:
        """Sum of group energies over this runtime's history."""
        total = EnergyBreakdown()
        for group in self.history:
            total = total + group.energy
        return total

    def reset(self) -> None:
        """Clear pending groups and history."""
        self._groups.clear()
        self.history.clear()
