"""repro.vec — vectorized interval arrays + batched interval-adjoint engine.

The scalar engine (:mod:`repro.intervals` + :mod:`repro.ad`) records one
tape node per elementary operation per analysed point.  Significance
analysis over a portfolio of options or an image of pixels repeats the
*same* DynDFG thousands of times with different data — a textbook SIMD
situation.  This package batches that: an
:class:`~repro.vec.ivec.IntervalArray` holds one interval per lane as two
NumPy arrays with outward-rounded endpoint arithmetic, and a
:class:`~repro.vec.vtape.VTape` records one array-valued node per
operation, so a single reverse sweep yields every lane's interval adjoint
``∇[uj][y]`` and per-lane significance (Eq. 11) at once.

The kernels don't change: :class:`~repro.vec.vadouble.VADouble` subclasses
the scalar :class:`~repro.ad.adouble.ADouble` and the
:mod:`repro.ad.intrinsics` overloads dispatch on the value type, so any
function written against ``op.sqrt`` / ``op.exp`` / ``op.clip`` runs on
either engine.  Results flow back into the existing scorpio pipeline
through :mod:`repro.vec.bridge` (any lane lowers to a scalar tape).
"""

from .ivec import (
    AmbiguousLaneComparisonError,
    IntervalArray,
    as_interval_array,
)
from .significance import (
    VecSignificanceReport,
    normalise_lanes,
    significance_lanes,
    significance_map_lanes,
)
from .vadouble import VADouble
from .vanalysis import VAnalysis, analyse_function_lanes
from .vtape import VNode, VTape
from .bridge import (
    LaneScanMap,
    lane_report,
    lane_scan_map,
    lift,
    lower,
    lower_tape,
)

__all__ = [
    "IntervalArray",
    "AmbiguousLaneComparisonError",
    "as_interval_array",
    "VADouble",
    "VTape",
    "VNode",
    "VAnalysis",
    "analyse_function_lanes",
    "VecSignificanceReport",
    "significance_lanes",
    "significance_map_lanes",
    "normalise_lanes",
    "lift",
    "lower",
    "lower_tape",
    "lane_report",
    "lane_scan_map",
    "LaneScanMap",
]
