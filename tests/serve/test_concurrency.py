"""Concurrent clients against one service: the cache records once.

A fresh server per test (module-scoped fixtures would leak warm caches
between tests and defeat the cold-start scenarios).
"""

import threading

from repro.serve import ServiceThread


def hammer(service: ServiceThread, n_threads: int, kernel: str, inputs_for):
    """n threads, each with its own client, one analyse request each."""
    barrier = threading.Barrier(n_threads)
    results: list[tuple[int, bytes, str]] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def worker(i: int) -> None:
        try:
            with service.client() as client:
                barrier.wait()
                body, outcome = client.analyse_raw(kernel, inputs_for(i))
            with lock:
                results.append((i, body, outcome))
        except BaseException as exc:  # surfaced to the main thread below
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestConcurrentClients:
    def test_cold_kernel_records_once(self):
        n = 8
        with ServiceThread() as service:
            results = hammer(
                service,
                n,
                "sobel",
                lambda i: [[float(j) + i / 10.0, float(j) + 1.0 + i / 10.0]
                           for j in range(9)],
            )
            stats = service.service.caches["sobel"].stats()

        outcomes = [outcome for _, _, outcome in results]
        assert len(results) == n
        assert outcomes.count("record") == 1
        assert outcomes.count("replay") == n - 1
        assert stats["records"] == 1
        assert stats["replays"] == n - 1
        assert stats["traces"] == 1

    def test_identical_requests_identical_bytes(self):
        n = 6
        inputs = [[float(j), float(j) + 1.0] for j in range(9)]
        with ServiceThread() as service:
            results = hammer(service, n, "sobel", lambda i: inputs)

        bodies = {body for _, body, _ in results}
        assert len(bodies) == 1

    def test_kernels_do_not_contend(self):
        """Threads on different kernels each record their own trace."""
        kernels = ["sobel", "blackscholes", "dct", "nbody"]
        with ServiceThread() as service:
            barrier = threading.Barrier(len(kernels))
            outcomes: dict[str, str] = {}
            errors: list[BaseException] = []
            lock = threading.Lock()

            def worker(kernel: str) -> None:
                try:
                    with service.client() as client:
                        barrier.wait()
                        _, outcome = client.analyse_raw(kernel)
                    with lock:
                        outcomes[kernel] = outcome
                except BaseException as exc:
                    with lock:
                        errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(k,)) for k in kernels
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            stats = {
                k: service.service.caches[k].stats() for k in kernels
            }

        assert all(outcome == "record" for outcome in outcomes.values())
        for kernel in kernels:
            assert stats[kernel]["records"] == 1
            assert stats[kernel]["traces"] == 1
