"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment drivers plus a few utility
actions:

* ``figure3`` / ``figure4`` / ``figure5`` / ``figure6`` — regenerate the
  significance-analysis figures as text;
* ``figure7 [--benchmark NAME] [--fast]`` — the quality/energy sweeps;
* ``table2`` — the LoC table;
* ``headline [--fast]`` — the 31-91% energy summary;
* ``tune --benchmark NAME --target-psnr DB`` — demonstrate the ratio
  autotuner on an image benchmark;
* ``profile EXPERIMENT`` — run an experiment with :mod:`repro.obs`
  tracing on and print the span tree + metrics table (also available as
  ``--profile [DIR]`` on the heavier commands);
* ``serve [--host H] [--port P]`` — run the significance-analysis
  service (:mod:`repro.serve`): analyse / advise / tune over HTTP/JSON
  with Prometheus metrics at ``/metrics``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def _add_replay_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--replay",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "analyse repeated kernel items by replaying a cached trace "
            "instead of re-recording (default: on; --no-replay forces "
            "the object-tape path)"
        ),
    )


def _add_executor_flags(
    sub_parser: argparse.ArgumentParser, default: str | None = None
) -> None:
    sub_parser.add_argument(
        "--executor",
        choices=["seq", "thread", "process"],
        default=default,
        help=(
            "where the heavy sweeps run: 'process' fans lane chunks out "
            "across worker processes over shared-memory tapes "
            "(repro.mp); 'seq'/'thread' keep everything in-process. "
            "Results are bitwise identical either way."
        ),
    )
    sub_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker count for --executor process/thread (default: "
            "REPRO_MP_WORKERS or the CPU count)"
        ),
    )


def _add_profile_flag(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--profile",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help=(
            "trace this run with repro.obs: append the span-tree / "
            "metrics summary to the output and write obs.json + "
            "metrics.prom + obs.trace.json (Chrome trace) to DIR "
            "(default: current directory)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Towards Automatic Significance Analysis for "
            "Approximate Computing' (CGO 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure3", help="Maclaurin term significances")

    p4 = sub.add_parser("figure4", help="DCT coefficient significance map")
    p4.add_argument("--size", type=int, default=64)
    p4.add_argument("--samples", type=int, default=6)
    _add_replay_flag(p4)
    _add_profile_flag(p4)

    p5 = sub.add_parser("figure5", help="InverseMapping significance map")
    p5.add_argument("--width", type=int, default=192)
    p5.add_argument("--height", type=int, default=144)
    _add_executor_flags(p5)

    sub.add_parser("figure6", help="bicubic pixel-pair significances")

    p7 = sub.add_parser("figure7", help="quality/energy ratio sweeps")
    p7.add_argument(
        "--benchmark",
        choices=["sobel", "dct", "fisheye", "nbody", "blackscholes", "all"],
        default="all",
    )
    p7.add_argument("--fast", action="store_true", help="reduced workloads")
    p7.add_argument(
        "--plot", action="store_true", help="ASCII chart instead of a table"
    )
    _add_profile_flag(p7)

    sub.add_parser("table2", help="lines-of-code accounting")

    ph = sub.add_parser("headline", help="energy-reduction summary")
    ph.add_argument("--fast", action="store_true")
    _add_replay_flag(ph)
    _add_profile_flag(ph)

    pa = sub.add_parser(
        "artifacts", help="export significance maps as PGM images"
    )
    pa.add_argument("--out-dir", default="artifacts")

    pr = sub.add_parser(
        "record", help="run every experiment and save JSON + markdown"
    )
    pr.add_argument("--out-dir", default="results")
    pr.add_argument(
        "--full", action="store_true", help="full workload sizes (slow)"
    )
    _add_replay_flag(pr)
    _add_profile_flag(pr)

    pt = sub.add_parser("tune", help="autotune the ratio knob")
    pt.add_argument("--benchmark", choices=["sobel", "dct"], default="dct")
    pt.add_argument("--target-psnr", type=float, default=35.0)
    pt.add_argument("--size", type=int, default=128)

    ps = sub.add_parser(
        "serve", help="run the significance-analysis HTTP service"
    )
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8077)
    ps.add_argument(
        "--workers",
        type=int,
        default=4,
        help="analysis thread/process pool size",
    )
    ps.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help=(
            "/analyse backend: 'thread' (default) runs in the serving "
            "process, 'process' ships analysis to a repro.mp worker "
            "pool (responses byte-identical; /healthz reports the "
            "active backend)"
        ),
    )
    ps.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for a request head/body before 408",
    )
    ps.add_argument(
        "--validate",
        action="store_true",
        help="re-record the first replayed request per kernel and assert "
        "the trace is identical (TraceCache validate mode)",
    )
    ps.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batching window: how long the first /analyse request "
        "of a quiet period waits for companions to share its replay "
        "sweep (0 batches only what is already queued)",
    )
    ps.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="max /analyse requests coalesced into one lane-batched "
        "sweep (1 disables micro-batching)",
    )
    ps.add_argument(
        "--tape-dir",
        default=None,
        help="persistent tape store directory (default: $REPRO_TAPE_DIR "
        "if set); recorded tapes are saved there and restarts replay "
        "them from disk instead of re-recording",
    )
    ps.add_argument(
        "--default-slo-ms",
        type=float,
        default=None,
        help="per-kernel latency SLO in ms (kernels without their own "
        "slo_ms); a kernel whose most recent request exceeds it turns "
        "/healthz degraded until it recovers",
    )

    pp = sub.add_parser(
        "profile",
        help="run an experiment with repro.obs tracing and print the "
        "span tree + metrics table",
    )
    pp.add_argument(
        "experiment",
        choices=[
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "headline",
        ],
    )
    pp.add_argument("--out-dir", default="profile")
    pp.add_argument(
        "--format",
        choices=["text", "chrome"],
        default="text",
        help=(
            "'text' prints the aggregated span tree; 'chrome' writes a "
            "Chrome trace-event file (obs.trace.json) with real pids, "
            "thread rows and cross-process flow arrows — load it at "
            "https://ui.perfetto.dev or chrome://tracing"
        ),
    )
    _add_replay_flag(pp)
    return parser


def _cmd_figure3(_args: argparse.Namespace) -> str:
    from repro.experiments.figure3 import figure3

    return figure3().to_text()


def _cmd_figure4(args: argparse.Namespace) -> str:
    from repro.experiments.figure4 import figure4

    return figure4(
        size=args.size, samples=args.samples, replay=args.replay
    ).to_text()


def _cmd_figure5(args: argparse.Namespace) -> str:
    from repro.experiments.figure5 import figure5

    return figure5(
        width=args.width,
        height=args.height,
        executor=args.executor,
        workers=args.workers,
    ).to_text()


def _cmd_figure6(_args: argparse.Namespace) -> str:
    from repro.experiments.figure6 import figure6

    return figure6().to_text()


def _cmd_figure7(args: argparse.Namespace) -> str:
    from repro.experiments import figure7
    from repro.experiments.plots import render_panel
    from repro.experiments.sweep import format_sweep

    renderer = render_panel if args.plot else format_sweep
    if args.benchmark == "all":
        sweeps = figure7.figure7_all(fast=args.fast)
        return "\n\n".join(renderer(s) for s in sweeps.values())
    fn = getattr(figure7, f"figure7_{args.benchmark}")
    return renderer(fn())


def _cmd_artifacts(args: argparse.Namespace) -> str:
    from repro.experiments.artifacts import save_all_artifacts

    paths = save_all_artifacts(args.out_dir)
    return "\n".join(f"wrote {p}" for p in paths)


def _cmd_table2(_args: argparse.Namespace) -> str:
    from repro.experiments.table2 import format_table2

    return format_table2()


def _cmd_headline(args: argparse.Namespace) -> str:
    from repro.experiments.headline import format_headline, headline

    with _replay_setting(args.replay):
        return format_headline(headline(fast=args.fast))


def _cmd_record(args: argparse.Namespace) -> str:
    from repro.experiments.record import save_record

    with _replay_setting(args.replay):
        json_path, md_path = save_record(args.out_dir, fast=not args.full)
    return f"wrote {json_path}\nwrote {md_path}"


class _replay_setting:
    """Scoped override of the module-wide replay default (no-op on None)."""

    def __init__(self, replay: bool | None):
        self.replay = replay
        self.previous: bool | None = None

    def __enter__(self) -> "_replay_setting":
        if self.replay is not None:
            from repro.scorpio import set_replay_default

            self.previous = set_replay_default(self.replay)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.previous is not None:
            from repro.scorpio import set_replay_default

            set_replay_default(self.previous)


def _cmd_tune(args: argparse.Namespace) -> str:
    from repro.images import natural_image
    from repro.metrics import psnr
    from repro.runtime import min_ratio_for_quality

    image = natural_image(args.size, args.size, seed=5)
    if args.benchmark == "sobel":
        from repro.kernels.sobel import sobel_reference as ref_fn
        from repro.kernels.sobel import sobel_significance as run_fn
    else:
        from repro.kernels.dct import dct_roundtrip_reference as ref_fn
        from repro.kernels.dct import dct_significance as run_fn

    reference = ref_fn(image)

    def evaluate(ratio: float) -> tuple[float, float]:
        run = run_fn(image, ratio)
        return min(psnr(reference, run.output), 99.0), run.joules

    result = min_ratio_for_quality(evaluate, args.target_psnr)
    lines = [
        f"benchmark: {args.benchmark} ({args.size}x{args.size})",
        f"target quality: {args.target_psnr:.1f} dB",
        f"chosen ratio:  {result.ratio:.4f}"
        + ("" if result.satisfied else "  (UNSATISFIABLE - best effort)"),
        f"quality: {result.quality:.2f} dB   energy: {result.energy:.1f} J",
        f"probes: {len(result.probes)}",
    ]
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio

    from repro.serve import ServiceConfig, SignificanceService

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        request_timeout=args.request_timeout,
        validate=args.validate,
        executor=args.executor,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        store_dir=args.tape_dir,
        default_slo_ms=args.default_slo_ms,
    )
    service = SignificanceService(config=config)

    async def run() -> None:
        host, port = await service.start()
        print(
            f"repro serve listening on http://{host}:{port} "
            f"({len(service.registry)} kernels: "
            f"{', '.join(sorted(service.registry))})",
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            await service.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return "repro serve stopped"


def _run_profile_target(experiment: str) -> None:
    """Dispatch one experiment under tracing (reduced workloads)."""
    fast_flags = {"figure7": ["--fast"], "headline": ["--fast"]}
    inner = build_parser().parse_args(
        [experiment] + fast_flags.get(experiment, [])
    )
    _COMMANDS[experiment](inner)
    if experiment == "figure4":
        # figure4 is pure analysis over a simplify=False kernel; run one
        # small task-runtime frame plus the (cheap) Maclaurin analysis so
        # the span tree also covers the runtime stages (taskwait, tasks)
        # and the object path with S4 simplification.
        from repro.experiments.figure3 import figure3
        from repro.images import natural_image
        from repro.kernels.dct import dct_significance

        dct_significance(natural_image(32, 32, seed=5), 0.5)
        figure3()


def _cmd_profile(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro import obs

    obs.reset_metrics()
    obs.clear()
    previous = obs.set_enabled(True)
    # One root trace context for the whole profiled run: every span
    # carries its trace id, so the dump (and any worker-side spans merged
    # back by repro.mp) re-link into one trace.
    ctx = obs.new_trace()
    try:
        with _replay_setting(args.replay), obs.context.use(ctx):
            _run_profile_target(args.experiment)
    finally:
        obs.set_enabled(previous)
    json_path, prom_path = obs.dump_profile(args.out_dir)
    chrome_path = obs.dump_chrome_trace(
        Path(args.out_dir) / "obs.trace.json"
    )
    if args.format == "chrome":
        return (
            f"profiled: {args.experiment} (trace {ctx.trace_id})\n"
            f"wrote {chrome_path} — open at https://ui.perfetto.dev "
            "or chrome://tracing\n"
            f"wrote {json_path}\nwrote {prom_path}"
        )
    body = obs.format_profile()
    return (
        f"profiled: {args.experiment} (trace {ctx.trace_id})\n\n{body}\n\n"
        f"wrote {json_path}\nwrote {prom_path}\nwrote {chrome_path}"
    )


_COMMANDS = {
    "figure3": _cmd_figure3,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "figure6": _cmd_figure6,
    "figure7": _cmd_figure7,
    "artifacts": _cmd_artifacts,
    "table2": _cmd_table2,
    "headline": _cmd_headline,
    "record": _cmd_record,
    "tune": _cmd_tune,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    profile_dir = getattr(args, "profile", None)
    if profile_dir is None:
        output = _COMMANDS[args.command](args)
    else:
        from pathlib import Path

        from repro import obs

        obs.reset_metrics()
        obs.clear()
        previous = obs.set_enabled(True)
        ctx = obs.new_trace()
        try:
            with obs.context.use(ctx):
                output = _COMMANDS[args.command](args)
        finally:
            obs.set_enabled(previous)
        json_path, prom_path = obs.dump_profile(profile_dir)
        chrome_path = obs.dump_chrome_trace(
            Path(profile_dir) / "obs.trace.json"
        )
        output = (
            f"{output}\n\n{obs.format_profile()}\n"
            f"trace: {ctx.trace_id}\n"
            f"wrote {json_path}\nwrote {prom_path}\nwrote {chrome_path}"
        )
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
