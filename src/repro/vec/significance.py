"""Per-lane significance — Eq. 11 of the paper, over a batch.

For a batched variable with lane values ``[uj]_k`` and lane adjoints
``∇[uj]_k[y_k]`` the per-lane significance is::

    S_{y_k}(uj_k) = w([uj]_k · ∇[uj]_k[y_k])

i.e. exactly the scalar Eq. 11 applied independently in every lane.  One
reverse sweep over a :class:`~repro.vec.vtape.VTape` therefore produces a
whole *significance map* — e.g. the per-pixel significance image of a
Sobel filter, or the per-option significance profile of a BlackScholes
portfolio — where the scalar engine would need one full tape per lane.

:class:`VecSignificanceReport` is the lane-parallel analogue of
:class:`repro.scorpio.report.SignificanceReport`: the same labelled /
normalised / ranking views, but every significance is an ``ndarray`` over
the lane shape.  Individual lanes can be dropped back into the full scalar
scorpio pipeline (Algorithm 1 simplify + variance scan) via
:mod:`repro.vec.bridge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.intervals import Interval

from .ivec import IntervalArray, as_interval_array
from .vtape import VTape

__all__ = [
    "significance_lanes",
    "significance_map_lanes",
    "normalise_lanes",
    "VecSignificanceReport",
]


def significance_lanes(value: Any, adjoint: Any) -> np.ndarray:
    """Eq. 11 per lane: width of the per-lane interval product.

    ``value``/``adjoint`` may be :class:`IntervalArray`, scalar
    :class:`Interval`, ``ndarray`` or ``float`` — non-array operands
    broadcast against the array one.  ``adjoint is None`` (node never
    reached by the sweep) yields zeros.
    """
    shape = None
    if isinstance(value, IntervalArray):
        shape = value.shape
    elif isinstance(adjoint, IntervalArray):
        shape = adjoint.shape
    if shape is None:
        raise TypeError(
            "significance_lanes needs at least one IntervalArray operand"
        )
    if adjoint is None:
        return np.zeros(shape)
    va = as_interval_array(value, shape)
    aa = as_interval_array(adjoint, shape)
    return (va * aa).width


def significance_map_lanes(tape: VTape) -> dict[int, np.ndarray]:
    """Per-lane significance for every node of a swept :class:`VTape`."""
    return {
        node.index: significance_lanes(node.value, node.adjoint)
        for node in tape
    }


def normalise_lanes(values: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Scale each lane's significances to sum to 1 across labels.

    Lanes whose total significance is 0 are left unnormalised (all-zero),
    mirroring :func:`repro.scorpio.significance.normalise`.
    """
    if not values:
        return {}
    total = np.zeros_like(next(iter(values.values())))
    for arr in values.values():
        total = total + arr
    safe = np.where(total > 0.0, total, 1.0)
    return {
        label: np.where(total > 0.0, arr / safe, arr)
        for label, arr in values.items()
    }


@dataclass
class VecSignificanceReport:
    """Result of one batched significance analysis (all lanes at once)."""

    tape: VTape
    significances: dict[int, np.ndarray]
    input_ids: list[int]
    intermediate_ids: list[int]
    output_ids: list[int]
    lane_shape: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.lane_shape:
            self.lane_shape = self.tape.require_lane_shape()

    # ------------------------------------------------------------------
    # Views (ndarray-valued analogues of SignificanceReport)
    # ------------------------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return int(np.prod(self.lane_shape)) if self.lane_shape else 1

    def significance_of(self, label: str) -> np.ndarray:
        """Per-lane significance of the node registered under ``label``."""
        nodes = [n for n in self.tape if n.label == label]
        if not nodes:
            raise KeyError(f"no registered variable named {label!r}")
        if len(nodes) > 1:
            raise KeyError(
                f"label {label!r} is ambiguous ({len(nodes)} nodes); "
                "use labelled_significances()"
            )
        return self.significances[nodes[0].index]

    def labelled_significances(self) -> dict[str, np.ndarray]:
        """Per-lane significance per registered label (repeats accumulate)."""
        out: dict[str, np.ndarray] = {}
        output_ids = set(self.output_ids)
        for node in self.tape:
            if node.label is None or node.index in output_ids:
                continue
            sig = self.significances[node.index]
            if node.label in out:
                out[node.label] = out[node.label] + sig
            else:
                out[node.label] = sig
        return out

    def normalised_significances(self) -> dict[str, np.ndarray]:
        return normalise_lanes(self.labelled_significances())

    def input_significances(self) -> dict[str, np.ndarray]:
        ids = set(self.input_ids)
        return {
            (n.label or f"x{n.index}"): self.significances[n.index]
            for n in self.tape
            if n.index in ids
        }

    def mean_significances(self) -> dict[str, float]:
        """Lane-averaged labelled significances (one float per label).

        This is the batch-level summary used to rank variables across the
        whole portfolio/image, comparable to averaging scalar per-lane
        reports.
        """
        return {
            label: float(np.mean(arr))
            for label, arr in self.labelled_significances().items()
        }

    def ranking(self) -> list[tuple[str, float]]:
        """Labels ranked by lane-averaged significance, highest first."""
        return sorted(
            self.mean_significances().items(),
            key=lambda kv: kv[1],
            reverse=True,
        )

    def lane_ranking(self, lane: int | tuple[int, ...]) -> list[tuple[str, float]]:
        """Labelled significances of one lane, most significant first."""
        idx = self._lane_index(lane)
        items = [
            (label, float(arr[idx]))
            for label, arr in self.labelled_significances().items()
        ]
        return sorted(items, key=lambda kv: kv[1], reverse=True)

    def lane_report(self, lane: int | tuple[int, ...], **kwargs: Any):
        """Lower one lane to a scalar tape and run the full scorpio pipeline.

        Returns a :class:`repro.scorpio.report.SignificanceReport` for the
        selected lane — simplify, variance scan and all.  Keyword arguments
        are forwarded to :func:`repro.vec.bridge.lane_report`.
        """
        from .bridge import lane_report as _lane_report

        return _lane_report(self, self._lane_index(lane), **kwargs)

    # ------------------------------------------------------------------
    # Rendering / export
    # ------------------------------------------------------------------
    def to_text(self, normalised: bool = True) -> str:
        """Batch-level summary (lane-averaged, SignificanceReport style)."""
        sigs = (
            self.normalised_significances()
            if normalised
            else self.labelled_significances()
        )
        means = {label: float(np.mean(arr)) for label, arr in sigs.items()}
        lines = [
            "batched significance analysis report",
            "=" * 36,
            f"lanes: {self.lane_shape}  tape nodes: {len(self.tape)}",
        ]
        kind = "normalised " if normalised else ""
        lines.append(f"mean {kind}significances over lanes:")
        width = max((len(k) for k in means), default=0)
        for label, value in sorted(
            means.items(), key=lambda kv: kv[1], reverse=True
        ):
            lines.append(f"  {label:<{width}}  {value:.6f}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible dict (lane arrays as lists) for serialisation."""
        return {
            "lane_shape": list(self.lane_shape),
            "labelled_significances": {
                label: arr.tolist()
                for label, arr in self.labelled_significances().items()
            },
            "mean_significances": self.mean_significances(),
            "input_significances": {
                label: arr.tolist()
                for label, arr in self.input_significances().items()
            },
            "tape_nodes": len(self.tape),
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _lane_index(self, lane: int | tuple[int, ...]) -> tuple[int, ...]:
        if isinstance(lane, (int, np.integer)):
            if len(self.lane_shape) == 1:
                return (int(lane),)
            return tuple(
                int(i)
                for i in np.unravel_index(int(lane), self.lane_shape)
            )
        return tuple(int(i) for i in lane)
