"""Monte-Carlo perturbation significance — the paper's future-work baseline.

Section 6 proposes "combining the robustness of algorithmic differentiation
to Monte Carlo-based methodologies"; related work (ASAC [30]) estimates
variable criticality by perturbing values and observing output movement.
This module implements that estimator so the IA+AD analysis can be
cross-checked: for well-behaved kernels the two must produce the same
significance *ranking* (the tests assert rank correlation).

Two estimators are provided:

* :func:`perturbation_significance` — one-at-a-time: vary input ``i`` over
  its interval while the others sit at their midpoints; score = empirical
  range width of the output (a sampled, derivative-free analogue of
  Eq. 11).
* :func:`sobol_style_significance` — all-at-once: jointly sample the box
  and attribute output variance to inputs by refitting with one input
  frozen (a cheap first-order variance decomposition).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.intervals import Box, Interval

__all__ = [
    "perturbation_significance",
    "sobol_style_significance",
    "rank_correlation",
]

Function = Callable[[Sequence[float]], float]


def perturbation_significance(
    fn: Function,
    box: Box | Sequence[Interval],
    samples: int = 128,
    seed: int = 0,
) -> list[float]:
    """One-at-a-time perturbation scores, one per input component."""
    if not isinstance(box, Box):
        box = Box(box)
    if samples < 2:
        raise ValueError("need at least 2 samples per input")
    rng = random.Random(seed)
    mid = list(box.midpoint)
    scores: list[float] = []
    for i, component in enumerate(box):
        lo_seen, hi_seen = float("inf"), float("-inf")
        for k in range(samples):
            point = list(mid)
            if k == 0:
                point[i] = component.lo
            elif k == 1:
                point[i] = component.hi
            else:
                point[i] = rng.uniform(component.lo, component.hi)
            value = float(fn(point))
            lo_seen = min(lo_seen, value)
            hi_seen = max(hi_seen, value)
        scores.append(hi_seen - lo_seen)
    return scores


def sobol_style_significance(
    fn: Function,
    box: Box | Sequence[Interval],
    samples: int = 256,
    seed: int = 0,
) -> list[float]:
    """First-order variance-based scores (freeze-one decomposition).

    Score of input ``i`` = Var(f) - Var(f | x_i frozen at midpoint),
    clipped at 0.  Crude but monotone in true first-order Sobol indices
    for additive-ish models, which is all the rank check needs.
    """
    if not isinstance(box, Box):
        box = Box(box)
    rng = random.Random(seed)
    base_points = box.sample(rng, samples)
    base_values = [float(fn(list(p))) for p in base_points]
    total_var = _variance(base_values)
    mid = list(box.midpoint)
    scores: list[float] = []
    for i in range(box.dimension):
        frozen_values = []
        for p in base_points:
            q = list(p)
            q[i] = mid[i]
            frozen_values.append(float(fn(q)))
        scores.append(max(0.0, total_var - _variance(frozen_values)))
    return scores


def _variance(values: Sequence[float]) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    return sum((v - mean) ** 2 for v in values) / n


def rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation between two score vectors."""
    if len(a) != len(b):
        raise ValueError("score vectors must have equal length")
    n = len(a)
    if n < 2:
        return 1.0
    ra = _ranks(a)
    rb = _ranks(b)
    mean = (n - 1) / 2.0
    cov = sum((x - mean) * (y - mean) for x, y in zip(ra, rb))
    var_a = sum((x - mean) ** 2 for x in ra)
    var_b = sum((y - mean) ** 2 for y in rb)
    if var_a == 0.0 or var_b == 0.0:
        return 1.0 if ra == rb else 0.0
    return cov / (var_a * var_b) ** 0.5


def _ranks(values: Sequence[float]) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks
